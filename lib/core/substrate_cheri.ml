open Lt_crypto
module Cheri = Lt_cheri.Cheri

type comp_state = {
  region : Cheri.cap; (* the compartment's only authority *)
  services : (string * Substrate.service) list;
  facilities : Substrate.facilities;
}

exception Compartment_state of comp_state

let compartment_bytes = 8192

let measure_code code = Sha256.digest ("cheri-compartment|" ^ code)

let properties =
  { Substrate.substrate_name = "cheri";
    concurrent_components = true;
    mutually_isolated = true;
    defends = [ Substrate.Remote_software; Substrate.Local_software ];
    tcb = [ ("capability-hardware", 4_000); ("compartment-loader", 1_500) ];
    shared_cache_with_host = true;
    progress_guaranteed = true }

let make rng ~size () =
  let machine = Cheri.create ~size in
  let root = Cheri.root machine in
  let session_secret = Drbg.bytes rng 32 in
  let next_off = ref 0 in
  let dead : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let tables : (string, (string, string) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  (* crash marks the compartment dead; its memory region is simply never
     handed out again. Sealed blobs survive because the seal key is
     derived from the measurement, which a relaunch reproduces. *)
  let crash, is_alive, revive = Substrate.lifecycle ~dead () in
  let launch ~name ~code ~services =
    revive name;
    if !next_off + compartment_bytes > Cheri.length root then
      Error "cheri: out of compartment memory"
    else begin
      let region =
        Cheri.derive root ~off:!next_off ~len:compartment_bytes
          ~perms:{ Cheri.load = true; store = true }
      in
      next_off := !next_off + compartment_bytes;
      let measurement = measure_code code in
      let seal_key =
        Hkdf.derive ~secret:session_secret ~salt:"cheri-seal" ~info:measurement 16
      in
      let table : (string, string) Hashtbl.t = Hashtbl.create 8 in
      Hashtbl.replace tables name table;
      let mirror () =
        (* the component's state physically lives inside its bounds *)
        let blob =
          Wire.encode
            (Hashtbl.fold (fun k v acc -> Wire.encode [ k; v ] :: acc) table []
             |> List.sort Stdlib.compare)
        in
        if String.length blob <= compartment_bytes then
          Cheri.store machine region ~off:0 blob
      in
      let facilities =
        { Substrate.f_seal =
            (fun data ->
              let nonce = String.sub (Sha256.digest data) 0 Speck.nonce_size in
              Speck.Aead.to_wire
                (Speck.Aead.encrypt ~key:seal_key ~nonce ~ad:"cheri-seal" data));
          f_unseal =
            (fun wire ->
              Option.bind (Speck.Aead.of_wire wire)
                (Speck.Aead.decrypt ~key:seal_key ~ad:"cheri-seal"));
          f_store =
            (fun ~key data ->
              Hashtbl.replace table key data;
              mirror ());
          f_load = (fun ~key -> Hashtbl.find_opt table key) }
      in
      Ok
        (Substrate.make_component ~name ~measurement
           ~state:(Compartment_state { region; services; facilities }))
    end
  in
  let state_of c =
    match Substrate.component_state c with
    | Compartment_state s -> s
    | _ -> invalid_arg "substrate_cheri: foreign component"
  in
  let invoke c ~fn arg =
    if not (is_alive c) then
      Error (Substrate.crashed_error (Substrate.component_name c))
    else
    let s = state_of c in
    match List.assoc_opt fn s.services with
    | None -> Error (Printf.sprintf "no entry point %S" fn)
    | Some service ->
      (try Ok (service s.facilities arg) with
       | Cheri.Capability_fault m -> Error ("capability fault: " ^ m)
       | exn -> Error (Printexc.to_string exn))
  in
  let attest _c ~nonce ~claim =
    ignore nonce;
    ignore claim;
    Error "capability machine has no hardware trust anchor"
  in
  let t =
    { Substrate.properties;
      launch;
      invoke;
      attest;
      measure = (fun ~code -> measure_code code);
      destroy = (fun _ -> ());
      crash;
      is_alive;
      snap_layers = [] }
  in
  t.Substrate.snap_layers <-
    [ Lt_world.Snapshottable.make ~name:"cheri"
        ~take:(fun () -> Cheri.take_snapshot machine)
        ~digest:(fun () -> Cheri.state_digest machine);
      Substrate.adapter_layer ~name:"substrate:cheri" ~dead ~tables
        ~extra_take:[ (fun () -> Lt_world.Snapshottable.save_ref next_off) ]
        ~extra_digest:(fun d -> Lt_world.Digest64.int d !next_off)
        () ];
  (t, machine, root)
