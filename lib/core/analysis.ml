type reach = {
  owned : string list;
  invocable : (string * string) list;
  owned_fraction : float;
  authority_fraction : float;
}

let tcb app ~tcb_of_substrate name =
  let visited = Hashtbl.create 8 in
  (* a substrate instance is shared infrastructure: count each distinct
     one once, not once per component riding on it *)
  let substrates = Hashtbl.create 4 in
  let rec go name =
    if Hashtbl.mem visited name then 0
    else begin
      Hashtbl.replace visited name ();
      match App.manifest app name with
      | None -> 0
      | Some m ->
        Hashtbl.replace substrates m.Manifest.substrate ();
        let deps =
          List.fold_left
            (fun acc c ->
              if c.Manifest.vetted then acc else acc + go c.Manifest.target)
            0 m.Manifest.connects_to
        in
        m.Manifest.size_loc + deps
    end
  in
  let components = go name in
  components
  + Hashtbl.fold (fun s () acc -> acc + tcb_of_substrate s) substrates 0

let compromise_reach app start =
  let mans = App.manifests app in
  let find n = List.find_opt (fun m -> m.Manifest.name = n) mans in
  let owned = Hashtbl.create 8 in
  let invocable = Hashtbl.create 8 in
  (* colocated components share fate *)
  let own_with_domain name =
    match find name with
    | None -> ()
    | Some m ->
      List.iter
        (fun m2 ->
          if m2.Manifest.domain = m.Manifest.domain then
            Hashtbl.replace owned m2.Manifest.name ())
        mans
  in
  own_with_domain start;
  Hashtbl.replace owned start ();
  (* propagate: owned components exercise their declared channels; a
     vulnerable target (or a domain-mate) becomes owned, others merely
     grant the declared authority *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun name () ->
        match find name with
        | None -> ()
        | Some m ->
          List.iter
            (fun c ->
              let target = c.Manifest.target in
              match find target with
              | None -> ()
              | Some tm ->
                if tm.Manifest.vulnerable && not (Hashtbl.mem owned target) then begin
                  own_with_domain target;
                  Hashtbl.replace owned target ();
                  changed := true
                end
                else if not (Hashtbl.mem owned target) then
                  if not (Hashtbl.mem invocable (target, c.Manifest.service)) then begin
                    Hashtbl.replace invocable (target, c.Manifest.service) ();
                    changed := true
                  end)
            m.Manifest.connects_to)
      (Hashtbl.copy owned)
  done;
  let owned_list = Hashtbl.fold (fun n () acc -> n :: acc) owned [] |> List.sort compare in
  let invocable_list =
    Hashtbl.fold (fun k () acc -> k :: acc) invocable []
    |> List.filter (fun (t, _) -> not (Hashtbl.mem owned t))
    |> List.sort compare
  in
  let total = float_of_int (List.length mans) in
  let total_services =
    List.fold_left (fun acc m -> acc + List.length m.Manifest.provides) 0 mans
  in
  let owned_services =
    List.fold_left
      (fun acc m ->
        if Hashtbl.mem owned m.Manifest.name then acc + List.length m.Manifest.provides
        else acc)
      0 mans
  in
  { owned = owned_list;
    invocable = invocable_list;
    owned_fraction = float_of_int (List.length owned_list) /. Float.max 1.0 total;
    authority_fraction =
      float_of_int (owned_services + List.length invocable_list)
      /. Float.max 1.0 (float_of_int total_services) }

let confused_deputy_risks app =
  let mans = App.manifests app in
  (* collect callers per (target, service) *)
  let callers = Hashtbl.create 16 in
  List.iter
    (fun m ->
      List.iter
        (fun c ->
          let key = (c.Manifest.target, c.Manifest.service) in
          let existing = Option.value ~default:[] (Hashtbl.find_opt callers key) in
          if not (List.mem m.Manifest.name existing) then
            Hashtbl.replace callers key (m.Manifest.name :: existing))
        m.Manifest.connects_to)
    mans;
  Hashtbl.fold
    (fun (target, service) who acc ->
      match List.find_opt (fun m -> m.Manifest.name = target) mans with
      | Some tm
        when List.length who >= 2 && not tm.Manifest.discriminates_clients ->
        (target, service, List.sort compare who) :: acc
      | _ -> acc)
    callers []
  |> List.sort compare

let attack_surface app name =
  match App.manifest app name with
  | None -> 0
  | Some m ->
    let inbound =
      List.fold_left
        (fun acc m2 ->
          acc
          + List.length
              (List.filter (fun c -> c.Manifest.target = name) m2.Manifest.connects_to))
        0 (App.manifests app)
    in
    inbound
    + (if m.Manifest.network_facing then List.length m.Manifest.provides else 0)

let domains app =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let d = m.Manifest.domain in
      Hashtbl.replace tbl d
        (m.Manifest.name :: Option.value ~default:[] (Hashtbl.find_opt tbl d)))
    (App.manifests app);
  Hashtbl.fold (fun d cs acc -> (d, List.sort compare cs) :: acc) tbl []
  |> List.sort compare

type path_search = { ps_paths : string list list; ps_truncated : bool }

let paths ?(max_paths = 1000) app ~src ~dst =
  let mans = App.manifests app in
  let find n = List.find_opt (fun m -> m.Manifest.name = n) mans in
  let results = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  (* acyclic path enumeration is exponential on dense graphs; the cap
     keeps the walk bounded, and the marker makes truncation explicit —
     a capped search must not read as an exhaustive one *)
  let rec walk visited name =
    if !truncated then ()
    else if name = dst then begin
      if !count >= max_paths then truncated := true
      else begin
        incr count;
        results := List.rev (name :: visited) :: !results
      end
    end
    else
      match find name with
      | None -> ()
      | Some m ->
        List.iter
          (fun c ->
            let target = c.Manifest.target in
            if not (List.mem target (name :: visited)) then
              walk (name :: visited) target)
          m.Manifest.connects_to
  in
  if max_paths > 0 && find src <> None then walk [] src;
  { ps_paths = List.sort Stdlib.compare !results; ps_truncated = !truncated }

let pp_reach fmt r =
  Format.fprintf fmt "owned=%d (%.0f%%) [%s]; authority=%.0f%%"
    (List.length r.owned)
    (100.0 *. r.owned_fraction)
    (String.concat ", " r.owned)
    (100.0 *. r.authority_fraction)
