open Lt_crypto
module Net = Lt_net.Net
module Gateway = Lt_net.Gateway

type tamper =
  | Genuine
  | Manipulated_anonymizer
  | Emulated_meter
  | Mitm_reading
  | Replayed_session
  | Unsigned_secure_world

type outcome = {
  anonymizer_verified : bool;
  reading_sent : bool;
  reading_accepted : bool;
  anonymized_rows : int;
  customer_id_leaked : bool;
  detail : string;
}

let tamper_name = function
  | Genuine -> "genuine"
  | Manipulated_anonymizer -> "manipulated-anonymizer"
  | Emulated_meter -> "emulated-meter"
  | Mitm_reading -> "mitm-reading"
  | Replayed_session -> "replayed-session"
  | Unsigned_secure_world -> "unsigned-secure-world"

let all_tampers =
  [ Genuine; Manipulated_anonymizer; Emulated_meter; Mitm_reading;
    Replayed_session; Unsigned_secure_world ]

(* the Figure 3 topology as manifests: readings leave the TrustZone
   meter only through attestation-vetted channels, and the anonymizer
   enclave ingests only through the utility's vetted boundary *)
let manifests =
  [ Manifest.v ~name:"meter" ~provides:[ "read" ] ~substrate:"trustzone"
      ~connects_to:[ Manifest.conn ~vetted:true "utility" "submit" ]
      ~size_loc:2000 ();
    Manifest.v ~name:"utility" ~provides:[ "submit" ] ~network_facing:true
      ~connects_to:[ Manifest.conn ~vetted:true "anonymizer" "ingest" ]
      ~size_loc:9000 ();
    Manifest.v ~name:"anonymizer" ~provides:[ "ingest" ] ~substrate:"sgx"
      ~size_loc:1200 () ]

let conformance = lazy (Flow.check_deployment manifests)

let good_anonymizer_code =
  "anonymizer-v1: strip customer id, keep kwh, store aggregate only"

let evil_anonymizer_code =
  "anonymizer-v1-evil: keep customer id for marketing analytics"

let customer_id = "customer-4711"

(* anonymizer services: shared by the good and evil variants; only the
   evil one keeps the customer id *)
let anonymizer_services ~evil db =
  [ ("ingest",
     fun _fac reading ->
       (* reading format: "customer=<id>;kwh=<n>" *)
       let kwh =
         match String.index_opt reading ';' with
         | Some i -> String.sub reading (i + 1) (String.length reading - i - 1)
         | None -> reading
       in
       let row = if evil then reading else kwh in
       db := row :: !db;
       "ingested") ]

let run ?(seed = 1L) tamper =
  match Lazy.force conformance with
  | Error e -> Error ("meter scenario manifests: " ^ e)
  | Ok () ->
  let rng = Drbg.create seed in
  (* --- manufacturing and provisioning --------------------------------- *)
  let intel_ca = Rsa.generate ~bits:512 rng in
  let tz_vendor = Rsa.generate ~bits:512 rng in
  let device_key = Drbg.bytes rng 32 in
  (* --- the meter appliance -------------------------------------------- *)
  let meter_machine = Lt_hw.Machine.create ~dram_pages:64 () in
  Lt_hw.Fuse.program meter_machine.Lt_hw.Machine.fuses ~name:"meter-key"
    ~visibility:Lt_hw.Fuse.Secure_only device_key;
  let image =
    match tamper with
    | Unsigned_secure_world ->
      Lt_tpm.Boot.unsigned_stage ~name:"tz-os" "meter-secure-os-v1"
    | _ -> Lt_tpm.Boot.sign_stage tz_vendor ~name:"tz-os" "meter-secure-os-v1"
  in
  let meter_sub =
    Substrate_trustzone.make meter_machine ~vendor:tz_vendor.Rsa.pub ~image
      ~device_id:"meter-0001" ~device_key_name:"meter-key" ~secure_pages:4
  in
  (* --- the utility server ---------------------------------------------- *)
  let server_machine = Lt_hw.Machine.create ~dram_pages:128 () in
  let sgx_sub, _cpu =
    Substrate_sgx.make server_machine rng ~ca_name:"intel" ~ca_key:intel_ca ()
  in
  let db = ref [] in
  let evil = tamper = Manipulated_anonymizer in
  let anon_code = if evil then evil_anonymizer_code else good_anonymizer_code in
  match
    sgx_sub.Substrate.launch ~name:"anonymizer" ~code:anon_code
      ~services:(anonymizer_services ~evil db)
  with
  | Error e -> Error ("launch anonymizer: " ^ e)
  | Ok anonymizer ->
  (* --- the untrusted network ------------------------------------------- *)
  let net = Net.create () in
  (* fresh net: these cannot collide *)
  List.iter
    (fun a -> match Net.register net a with Ok () | Error `Duplicate_addr -> ())
    [ "meter"; "utility" ];
  (match tamper with
   | Mitm_reading ->
     Net.set_adversary net (fun p ->
         match Wire.untag p.Net.payload with
         | Some ("reading", [ reading; ev ]) ->
           (* inflate the reading, keep the evidence *)
           ignore reading;
           Net.Tamper (Wire.tagged "reading" [ "customer=4711;kwh=99999"; ev ])
         | _ -> Net.Deliver)
   | _ -> ());
  (* what each side is configured to accept *)
  let meter_policy =
    { Attestation.trusted_cas = [ ("intel", intel_ca.Rsa.pub) ];
      shared_device_keys = [];
      (* the utility open-sourced the anonymizer: the meter knows its
         known-good measurement *)
      accepted_measurements = [ sgx_sub.Substrate.measure ~code:good_anonymizer_code ] }
  in
  let utility_policy ~meter_measurement =
    { Attestation.trusted_cas = [];
      shared_device_keys = [ ("meter-0001", device_key) ];
      accepted_measurements = [ meter_measurement ] }
  in
  let finish ~anonymizer_verified ~reading_sent ~reading_accepted ~detail =
    { anonymizer_verified;
      reading_sent;
      reading_accepted;
      anonymized_rows = List.length !db;
      customer_id_leaked =
        List.exists
          (fun row ->
            let n = String.length customer_id and h = String.length row in
            let rec go i =
              i + n <= h && (String.sub row i n = customer_id || go (i + 1))
            in
            go 0)
          !db;
      detail }
  in
  match meter_sub with
  | Error e ->
    (* boot ROM refused the secure world: no attestation, no trust *)
    Ok
      (finish ~anonymizer_verified:false ~reading_sent:false
         ~reading_accepted:false ~detail:("meter trust anchor: " ^ e))
  | Ok (tz_sub, _tz) ->
    match
      tz_sub.Substrate.launch ~name:"meter" ~code:"meter-logic-v1"
        ~services:
          [ ("read",
             fun fac _ ->
               let n =
                 match fac.Substrate.f_load ~key:"kwh" with
                 | Some v -> int_of_string v + 3
                 | None -> 3
               in
               fac.Substrate.f_store ~key:"kwh" (string_of_int n);
               Printf.sprintf "customer=4711;kwh=%d" n) ]
    with
    | Error e -> Error ("launch meter: " ^ e)
    | Ok meter_comp ->
    let meter_measurement = Substrate.component_measurement meter_comp in
    (* ---- session ------------------------------------------------------ *)
    (* 1. meter challenges the utility *)
    let meter_nonce = Sha256.hex (Drbg.bytes rng 16) in
    Net.send net ~src:"meter" ~dst:"utility" (Wire.tagged "hello" [ meter_nonce ]);
    (* 2. utility answers with anonymizer evidence and its own challenge *)
    let server_nonce = Sha256.hex (Drbg.bytes rng 16) in
    let evidence_sent =
      match Net.recv net "utility" with
      | Some { Net.payload; _ } ->
        (match Wire.untag payload with
         | Some ("hello", [ n ]) ->
           (match
              sgx_sub.Substrate.attest anonymizer ~nonce:n ~claim:"role=anonymizer"
            with
            | Ok ev ->
              Net.send net ~src:"utility" ~dst:"meter"
                (Wire.tagged "anonymizer-evidence"
                   [ Attestation.to_wire ev; server_nonce ]);
              Ok ()
            | Error e -> Error ("anonymizer attest: " ^ e))
         | _ -> Ok ())
      | None -> Ok ()
    in
    match evidence_sent with
    | Error e -> Error e
    | Ok () ->
    (* 3. meter verifies the anonymizer before releasing private data *)
    let anonymizer_verified, got_server_nonce =
      match Net.recv net "meter" with
      | Some { Net.payload; _ } ->
        (match Wire.untag payload with
         | Some ("anonymizer-evidence", [ ev_wire; srv_nonce ]) ->
           (match Attestation.of_wire ev_wire with
            | Some ev ->
              (match Attestation.verify meter_policy ~nonce:meter_nonce ev with
               | Ok () -> (true, Some srv_nonce)
               | Error _ -> (false, None))
            | None -> (false, None))
         | _ -> (false, None))
      | None -> (false, None)
    in
    if not anonymizer_verified then
      Ok
        (finish ~anonymizer_verified:false ~reading_sent:false
           ~reading_accepted:false
           ~detail:"meter refused: anonymizer identity not acceptable")
    else begin
      let srv_nonce = Option.get got_server_nonce in
      (* 4. meter reads and attests; an emulated meter forges instead *)
      let staged =
        match tamper with
        | Emulated_meter ->
          let fake = "customer=4711;kwh=0" in
          let forged =
            Attestation.make_hmac ~substrate:"trustzone"
              ~measurement:meter_measurement ~nonce:srv_nonce
              ~claim:("reading=" ^ fake) ~device:"meter-0001"
              ~key:"guessed-key-wrong"
          in
          Ok (fake, Attestation.to_wire forged)
        | _ ->
          (match tz_sub.Substrate.invoke meter_comp ~fn:"read" "" with
           | Error e -> Error ("meter read: " ^ e)
           | Ok reading ->
             (match
                tz_sub.Substrate.attest meter_comp ~nonce:srv_nonce
                  ~claim:("reading=" ^ reading)
              with
              | Error e -> Error ("meter attest: " ^ e)
              | Ok ev -> Ok (reading, Attestation.to_wire ev)))
      in
      match staged with
      | Error e -> Error e
      | Ok (reading, ev_wire) ->
      Net.send net ~src:"meter" ~dst:"utility"
        (Wire.tagged "reading" [ reading; ev_wire ]);
      (* replay: the adversary re-injects the observed message in a NEW
         session where the server expects a fresh nonce *)
      let session_nonce_at_server =
        match tamper with
        | Replayed_session -> Sha256.hex (Drbg.bytes rng 16) (* a later session *)
        | _ -> srv_nonce
      in
      (* 5. utility verifies and bills *)
      let reading_accepted, detail =
        match Net.recv net "utility" with
        | Some { Net.payload; _ } ->
          (match Wire.untag payload with
           | Some ("reading", [ r; evw ]) ->
             (match Attestation.of_wire evw with
              | None -> (false, "utility: malformed evidence")
              | Some ev ->
                let policy = utility_policy ~meter_measurement in
                (match
                   Attestation.verify policy ~nonce:session_nonce_at_server ev
                 with
                 | Error f ->
                   (false, Format.asprintf "utility rejected: %a" Attestation.pp_failure f)
                 | Ok () ->
                   if ev.Attestation.ev_claim <> "reading=" ^ r then
                     (false, "utility rejected: reading does not match attested claim")
                   else begin
                     match sgx_sub.Substrate.invoke anonymizer ~fn:"ingest" r with
                     | Ok _ -> (true, "billed")
                     | Error e -> (false, "anonymizer failed: " ^ e)
                   end))
           | _ -> (false, "utility: unexpected message"))
        | None -> (false, "utility: no message received")
      in
      Ok (finish ~anonymizer_verified ~reading_sent:true ~reading_accepted ~detail)
    end

let gateway_demo () =
  let flood_count = 50 in
  let victims = [ "victim-a"; "victim-b"; "victim-c" ] in
  let direct_hits =
    (* compromised Android with raw NIC access *)
    let net = Net.create () in
    List.iter
      (fun a -> match Net.register net a with Ok () | Error `Duplicate_addr -> ())
      ("utility" :: victims);
    for i = 1 to flood_count do
      List.iter
        (fun v -> Net.send net ~src:"android" ~dst:v (Printf.sprintf "syn-%d" i))
        victims
    done;
    List.fold_left (fun acc v -> acc + Net.pending net v) 0 victims
  in
  let gated_victim_hits, gated_utility_hits =
    (* same flood, but the gateway holds the NIC exclusively *)
    let net = Net.create () in
    List.iter
      (fun a -> match Net.register net a with Ok () | Error `Duplicate_addr -> ())
      ("utility" :: victims);
    let gw =
      Gateway.create ~whitelist:[ "utility" ] ~tokens_per_tick:0.2 ~burst:5.0
    in
    for i = 1 to flood_count do
      List.iter
        (fun v ->
          ignore
            (Gateway.submit gw net ~now:i ~src:"android" ~dst:v
               (Printf.sprintf "syn-%d" i)))
        victims;
      ignore
        (Gateway.submit gw net ~now:i ~src:"meter" ~dst:"utility"
           (Printf.sprintf "telemetry-%d" i))
    done;
    ( List.fold_left (fun acc v -> acc + Net.pending net v) 0 victims,
      Net.pending net "utility" )
  in
  (direct_hits, gated_victim_hits, gated_utility_hits)
