(* The subsystems named in §III-C of the paper: IMAP/SMTP protocol
   handling, TLS and login, HTML rendering, attachment decoding,
   composing with input methods and personal dictionaries, address book,
   storage with folders/search, and the user interface. Sizes are
   order-of-magnitude figures for such codebases. *)

let component_names =
  [ "ui"; "imap"; "smtp"; "tls"; "keystore"; "renderer"; "decoder"; "composer";
    "input"; "dictionary"; "addressbook"; "storage"; "legacyfs" ]

let manifests ~vertical =
  let domain name = if vertical then "mailapp" else name in
  let v ~name = Manifest.v ~name ~domain:(domain name) in
  [ v ~name:"ui" ~provides:[ "show" ]
      ~connects_to:
        [ Manifest.conn "imap" "fetch"; Manifest.conn "renderer" "render";
          Manifest.conn "decoder" "decode"; Manifest.conn "composer" "compose";
          Manifest.conn "storage" "load" ]
      ~size_loc:6000 ();
    (* protocol handlers parse data from the network: assumed exploitable *)
    v ~name:"imap" ~provides:[ "fetch" ]
      ~connects_to:[ Manifest.conn "tls" "transmit"; Manifest.conn "storage" "store" ]
      ~size_loc:8000 ~network_facing:true ~vulnerable:true ();
    v ~name:"smtp" ~provides:[ "send" ]
      ~connects_to:[ Manifest.conn "tls" "transmit" ]
      ~size_loc:4000 ~network_facing:true ~vulnerable:true ();
    (* tls holds keys and the only channel to the nic *)
    v ~name:"tls" ~provides:[ "transmit" ]
      ~connects_to:[ Manifest.conn "keystore" "sign" ]
      ~size_loc:3000 ();
    v ~name:"keystore" ~provides:[ "sign" ] ~size_loc:800 ();
    (* content handlers parse hostile input *)
    v ~name:"renderer" ~provides:[ "render" ] ~size_loc:25000 ~network_facing:true
      ~vulnerable:true ();
    v ~name:"decoder" ~provides:[ "decode" ] ~size_loc:12000 ~network_facing:true
      ~vulnerable:true ();
    v ~name:"composer" ~provides:[ "compose" ]
      ~connects_to:
        [ Manifest.conn "smtp" "send"; Manifest.conn "input" "suggest";
          Manifest.conn "addressbook" "lookup" ]
      ~size_loc:5000 ();
    v ~name:"input" ~provides:[ "suggest" ]
      ~connects_to:[ Manifest.conn "dictionary" "query" ]
      ~size_loc:4000 ();
    (* highly personal data, reachable only from the input method *)
    v ~name:"dictionary" ~provides:[ "query" ] ~size_loc:1500 ();
    v ~name:"addressbook" ~provides:[ "lookup" ] ~size_loc:2000 ();
    (* storage reuses the huge legacy fs through a VPFS-style wrapper *)
    v ~name:"storage" ~provides:[ "load"; "store" ]
      ~connects_to:[ Manifest.conn ~vetted:true "legacyfs" "io" ]
      ~size_loc:2500 ();
    v ~name:"legacyfs" ~provides:[ "io" ] ~size_loc:30000 ~vulnerable:true () ]

(* static/dynamic cross-check on the horizontal shape: the manifests
   provision onto a microkernel whose capability state matches the
   declared graph, and the flow verdict is leak-free *)
let conformance = lazy (Flow.check_deployment (manifests ~vertical:false))

let build ~vertical =
  match Lazy.force conformance with
  | Error e -> Error ("mail scenario manifests: " ^ e)
  | Ok () ->
    let app = App.create () in
    List.iter (App.add_stub app) (manifests ~vertical);
    Ok app

let containment_row name =
  let owned shape =
    match build ~vertical:shape with
    | Ok app -> Ok (Analysis.compromise_reach app name).Analysis.owned_fraction
    | Error e -> Error e
  in
  match (owned true, owned false) with
  | Ok v, Ok h -> Ok (v, h)
  | Error e, _ | _, Error e -> Error e

let containment_table () =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest ->
      (match containment_row name with
       | Ok (v, h) -> go ((name, v, h) :: acc) rest
       | Error e -> Error e)
  in
  go [] component_names

let tcb_comparison () =
  match build ~vertical:false with
  | Error e -> Error e
  | Ok horizontal ->
  (* in the vertical design every subsystem shares one protection domain
     with all the others, so each one's TCB is the entire application
     plus the monolithic OS underneath *)
  let monolithic_os = 30_000 in
  let whole_app =
    List.fold_left
      (fun acc m -> acc + m.Manifest.size_loc)
      0
      (manifests ~vertical:true)
  in
  let microkernel _ = 10_000 in
  Ok
    (List.map
       (fun name ->
         ( name,
           whole_app + monolithic_os,
           Analysis.tcb horizontal ~tcb_of_substrate:microkernel name ))
       component_names)
