(** The smart-meter scenario — Figure 3, end to end.

    A meter appliance (microkernel + virtualized Android + TrustZone
    attestation anchored in boot ROM and a fused per-device AES key)
    talks across an untrusted network to a utility server whose
    anonymizer runs in an SGX enclave:
    - the {e meter} verifies the anonymizer's code identity before
      sending any privacy-sensitive readings ("engineered privacy");
    - the {e utility} verifies the meter's attestation before billing
      ("the utility also needs to trust the meter readings");
    - authentication is password-less: the fused key is the credential,
      so there is nothing to phish.

    The [tamper] cases are the attacks §III-C argues the design resists. *)

type tamper =
  | Genuine
  | Manipulated_anonymizer
      (** utility deploys an anonymizer that logs customer ids *)
  | Emulated_meter
      (** software emulation sends fake readings with a guessed key *)
  | Mitm_reading   (** on-path adversary rewrites the reading in flight *)
  | Replayed_session  (** old reading message replayed at the server *)
  | Unsigned_secure_world
      (** meter's secure world image is not vendor-signed *)

type outcome = {
  anonymizer_verified : bool;  (** meter accepted the anonymizer's identity *)
  reading_sent : bool;         (** meter released the reading *)
  reading_accepted : bool;     (** utility accepted and billed it *)
  anonymized_rows : int;       (** rows in the utility database *)
  customer_id_leaked : bool;   (** did a customer id reach the database? *)
  detail : string;
}

(** The Figure 3 topology as manifests — TrustZone meter, network-facing
    utility, SGX anonymizer, all boundaries vetted — for the {!Flow}
    analysis and conformance tooling. *)
val manifests : Manifest.t list

(** {!Flow.check_deployment} over {!manifests}: provisions them onto a
    simulated microkernel and checks capability conformance plus a
    leak-free flow verdict. Forced (and asserted) by {!run}. *)
val conformance : (unit, string) result Lazy.t

(** [run ?seed tamper] executes one full session under the attack.
    [Error _] when the scenario cannot be staged (conformance failure,
    launch/attest refusal) — typed, so harnesses never catch
    [Failure _]. *)
val run : ?seed:int64 -> tamper -> (outcome, string) result

val tamper_name : tamper -> string

val all_tampers : tamper list

(** [gateway_demo ()] — the IoT-DDoS part of §III-C: the compromised
    Android subsystem floods three victims through (a) a direct NIC and
    (b) the exclusive-access gateway. Returns
    [(victim_hits_direct, victim_hits_gated, utility_hits_gated)]. *)
val gateway_demo : unit -> int * int * int
