(** The cloud-enclave scenario (§II-B).

    "When running software on rented servers within a data center, SGX
    allows to run the code without the server operating system or data
    center staff having any visibility into the execution state. The
    data center customer needs to trust only the Intel CPU."

    A remote customer ships code to an untrusted cloud host. The host
    builds the enclave; the customer attests it (nonce + measurement +
    enclave-generated key binding) before provisioning a secret; the
    enclave processes jobs, sealing its running state between restarts.
    The host attacks in every way §II-B anticipates — plus the one the
    paper's sealing story glosses over: sealed state has no freshness,
    so the host can roll the enclave back to an old checkpoint unless a
    monotonic counter pins it. *)

type attack =
  | Honest_host
  | Read_enclave_memory   (** bus probe + direct read of the EPC *)
  | Starve_enclave        (** scheduler denies the enclave CPU time *)
  | Swap_enclave_code     (** host builds a doctored enclave *)
  | Rollback_sealed_state (** host restarts from an old sealed blob *)

type outcome = {
  attested : bool;        (** customer accepted the enclave identity *)
  provisioned : bool;     (** secret released into the enclave *)
  jobs_completed : int;   (** of the 3 jobs submitted *)
  secret_leaked : bool;   (** host ever observed the plaintext secret *)
  state_regressed : bool; (** enclave accepted stale state after restart *)
  detail : string;
}

(** The §II-B trust topology as manifests — customer and host exposed,
    enclave behind the host's vetted ecall boundary — for the
    {!Flow} analysis and conformance tooling. *)
val manifests : Manifest.t list

(** {!Flow.check_deployment} over {!manifests}: provisions them onto a
    simulated microkernel and checks capability conformance plus a
    leak-free flow verdict. Forced (and asserted) by {!run}. *)
val conformance : (unit, string) result Lazy.t

(** [run ?with_counter attack] — [with_counter] (default [true]) guards
    sealed state with the hardware monotonic counter; set [false] to
    reproduce the rollback. [Error _] when the scenario itself cannot be
    staged (conformance failure, substrate refusal) — a typed answer a
    chaos or fuzz harness can observe, not a [Failure] to catch. *)
val run : ?with_counter:bool -> attack -> (outcome, string) result

val attack_name : attack -> string

val all_attacks : attack list
