module K = Lt_kernel.Kernel

type config = { secret_substrates : string list }

let default_config = { secret_substrates = [ "sep"; "sgx"; "trustzone"; "flicker" ] }

type edge = { e_src : string; e_dst : string; e_service : string; e_reply : bool }

type leak = { l_secret : string; l_sink : string; l_path : string list }

type taint_hit = {
  t_source : string;
  t_sink : string;
  t_path : string list;
  t_direct : bool;
}

type verdict = Secure | Leak of leak list

type result = {
  labels : (string * Flow_lattice.t) list;
  leaks : leak list;
  taint_hits : taint_hit list;
  verdict : verdict;
  edges : edge list;
}

(* --- the flow graph --------------------------------------------------------- *)

(* first manifest wins on duplicate names, matching Lint_rules.make_ctx *)
let dedupe manifests =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun m ->
      if Hashtbl.mem seen m.Manifest.name then false
      else begin
        Hashtbl.replace seen m.Manifest.name ();
        true
      end)
    manifests

let flow_edges manifests =
  let declared = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace declared m.Manifest.name ()) manifests;
  List.concat_map
    (fun m ->
      List.concat_map
        (fun c ->
          let target = c.Manifest.target in
          if c.Manifest.vetted || target = m.Manifest.name
             || not (Hashtbl.mem declared target)
          then []
          else
            [ { e_src = m.Manifest.name; e_dst = target;
                e_service = c.Manifest.service; e_reply = false };
              { e_src = target; e_dst = m.Manifest.name;
                e_service = c.Manifest.service; e_reply = true } ])
        m.Manifest.connects_to)
    manifests
  |> List.sort_uniq Stdlib.compare

(* --- the worklist fixpoint solver ------------------------------------------- *)

(* [solve nodes adj base] propagates labels to a fixpoint: out(v) =
   base(v) ⊔ ⨆ out(u) over edges u -> v. Each node re-enters the
   worklist only when its label strictly rises, and the lattice height
   is bounded by the secret-holder count, so the solver is linear in
   edges times height — no path enumeration. *)
let solve nodes adj base =
  let label = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace label n (base n)) nodes;
  let get n = Option.value ~default:Flow_lattice.public (Hashtbl.find_opt label n) in
  let queue = Queue.create () in
  let queued = Hashtbl.create 16 in
  let push n =
    if not (Hashtbl.mem queued n) then begin
      Hashtbl.replace queued n ();
      Queue.add n queue
    end
  in
  List.iter
    (fun n -> if not (Flow_lattice.equal (get n) Flow_lattice.public) then push n)
    nodes;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Hashtbl.remove queued u;
    let lu = get u in
    List.iter
      (fun v ->
        let lv = get v in
        let j = Flow_lattice.join lv lu in
        if not (Flow_lattice.equal j lv) then begin
          Hashtbl.replace label v j;
          push v
        end)
      (adj u)
  done;
  get

(* deterministic adjacency: sorted successor lists *)
let adjacency edges =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let old = Option.value ~default:[] (Hashtbl.find_opt tbl e.e_src) in
      if not (List.mem e.e_dst old) then Hashtbl.replace tbl e.e_src (e.e_dst :: old))
    edges;
  fun n ->
    List.sort String.compare (Option.value ~default:[] (Hashtbl.find_opt tbl n))

(* shortest witness paths: breadth-first with first-discovery parents
   over the sorted adjacency, so reports are deterministic *)
let bfs_paths adj start =
  let parent = Hashtbl.create 16 in
  Hashtbl.replace parent start start;
  let queue = Queue.create () in
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not (Hashtbl.mem parent v) then begin
          Hashtbl.replace parent v u;
          Queue.add v queue
        end)
      (adj u)
  done;
  fun dst ->
    if not (Hashtbl.mem parent dst) then None
    else begin
      let rec walk acc n =
        if n = start then start :: acc else walk (n :: acc) (Hashtbl.find parent n)
      in
      Some (walk [] dst)
    end

(* --- the analysis ------------------------------------------------------------ *)

let tainted_base m =
  m.Manifest.network_facing || m.Manifest.vulnerable

let analyze ?(config = default_config) manifests =
  let manifests = dedupe manifests in
  let nodes = List.map (fun m -> m.Manifest.name) manifests in
  let find n = List.find_opt (fun m -> m.Manifest.name = n) manifests in
  let holds_secret m = List.mem m.Manifest.substrate config.secret_substrates in
  let edges = flow_edges manifests in
  let request_edges = List.filter (fun e -> not e.e_reply) edges in
  (* taint rides requests only: it models who can invoke whom *)
  let taint_adj = adjacency request_edges in
  let taint =
    solve nodes taint_adj (fun n ->
        match find n with
        | Some m when tainted_base m -> Flow_lattice.tainted
        | _ -> Flow_lattice.public)
  in
  (* secrecy rides requests and replies: replies are how secrets escape *)
  let secret_adj = adjacency edges in
  let secrecy =
    solve nodes secret_adj (fun n ->
        match find n with
        | Some m when holds_secret m -> Flow_lattice.secret n
        | _ -> Flow_lattice.public)
  in
  let labels =
    List.map (fun n -> (n, Flow_lattice.join (taint n) (secrecy n)))
      (List.sort String.compare nodes)
  in
  (* leaks: secret material at an attacker-observable component *)
  let holders =
    List.filter holds_secret manifests
    |> List.map (fun m -> m.Manifest.name)
    |> List.sort String.compare
  in
  let leaks =
    List.concat_map
      (fun h ->
        let path_to = bfs_paths secret_adj h in
        List.filter_map
          (fun m ->
            let n = m.Manifest.name in
            if n = h || not (tainted_base m) then None
            else
              match path_to n with
              | Some path -> Some { l_secret = h; l_sink = n; l_path = path }
              | None -> None)
          manifests)
      holders
    |> List.sort Stdlib.compare
  in
  (* taint hits: attacker influence arriving at a secret holder *)
  let sources =
    List.filter tainted_base manifests
    |> List.map (fun m -> m.Manifest.name)
    |> List.sort String.compare
  in
  let taint_hits =
    List.concat_map
      (fun src ->
        let path_to = bfs_paths taint_adj src in
        List.filter_map
          (fun h ->
            if h = src then None
            else
              match path_to h with
              | Some path ->
                Some
                  { t_source = src; t_sink = h; t_path = path;
                    t_direct = List.length path = 2 }
              | None -> None)
          holders)
      sources
    |> List.sort Stdlib.compare
  in
  let verdict = if leaks = [] then Secure else Leak leaks in
  { labels; leaks; taint_hits; verdict; edges }

let has_leaks r = r.leaks <> []

(* --- deployment -------------------------------------------------------------- *)

type deployment = {
  d_kernel : K.t;
  d_tasks : (string * K.task) list;
  d_endpoints : (string * K.endpoint) list;
  d_badges : (int * string) list;
}

(* the declared channel pairs (caller, target), vetted or not: vetting
   changes labels, not the existence of the channel *)
let declared_pairs manifests =
  List.concat_map
    (fun m ->
      List.filter_map
        (fun c ->
          if c.Manifest.target = m.Manifest.name then None
          else Some (m.Manifest.name, c.Manifest.target))
        m.Manifest.connects_to)
    manifests
  |> List.sort_uniq Stdlib.compare

let provision ?dram_pages manifests =
  let names = List.map (fun m -> m.Manifest.name) manifests in
  let dup =
    List.filter (fun n -> List.length (List.filter (( = ) n) names) > 1) names
  in
  if dup <> [] then
    Error (Printf.sprintf "duplicate component %S" (List.hd dup))
  else begin
    let missing =
      List.concat_map
        (fun m ->
          List.filter_map
            (fun c ->
              if c.Manifest.target = m.Manifest.name then
                Some (Printf.sprintf "%s connects to itself" m.Manifest.name)
              else if List.mem c.Manifest.target names then None
              else
                Some
                  (Printf.sprintf "%s connects to undeclared %S" m.Manifest.name
                     c.Manifest.target))
            m.Manifest.connects_to)
        manifests
    in
    match missing with
    | e :: _ -> Error e
    | [] ->
      let pages = Option.value ~default:(2 * List.length manifests + 8) dram_pages in
      let machine = Lt_hw.Machine.create ~dram_pages:pages () in
      let k = K.create machine (Lt_kernel.Sched.Round_robin { quantum = 500 }) in
      let oom = ref None in
      let tasks =
        List.map
          (fun m ->
            let name = m.Manifest.name in
            let task = K.create_task k ~name ~partition:name in
            (match K.map_memory k task ~vpage:0 ~pages:1 Lt_hw.Mmu.rw with
             | Ok () -> ()
             | Error K.Out_of_frames ->
               if !oom = None then oom := Some name);
            (name, task))
          manifests
      in
      match !oom with
      | Some name ->
        Error (Printf.sprintf "provisioning %s: out of physical frames" name)
      | None ->
      let endpoints =
        List.map
          (fun m ->
            let name = m.Manifest.name in
            let ep = K.create_endpoint k ~name:(name ^ ".ep") in
            let task = List.assoc name tasks in
            ignore
              (K.grant k task ep ~rights:{ K.send = false; recv = true } ~badge:0);
            (name, ep))
          manifests
      in
      (* the badge is the caller's identity: position in the manifest
         list, so receivers can discriminate clients (§III-D) *)
      let badges =
        List.mapi (fun i m -> (i + 1, m.Manifest.name)) manifests
      in
      let badge_of name =
        fst (List.find (fun (_, n) -> n = name) badges)
      in
      List.iter
        (fun (caller, target) ->
          let task = List.assoc caller tasks in
          let ep = List.assoc target endpoints in
          ignore
            (K.grant k task ep ~rights:{ K.send = true; recv = false }
               ~badge:(badge_of caller)))
        (declared_pairs manifests);
      Ok { d_kernel = k; d_tasks = tasks; d_endpoints = endpoints; d_badges = badges }
  end

(* --- conformance ------------------------------------------------------------- *)

type cap_fact = {
  c_task : string;
  c_endpoint : string;
  c_slot : int;
  c_badge : int;
  c_send : bool;
  c_recv : bool;
}

type over_privilege = { o_task : string; o_endpoint : string; o_reason : string }

type under_provision = {
  u_caller : string;
  u_target : string;
  u_services : string list;
}

type conformance = {
  facts : cap_fact list;
  over : over_privilege list;
  under : under_provision list;
}

let authority k =
  List.concat_map
    (fun task ->
      List.map
        (fun (slot, ep, rights, badge) ->
          { c_task = K.task_name task; c_endpoint = ep; c_slot = slot;
            c_badge = badge; c_send = rights.K.send; c_recv = rights.K.recv })
        (K.caps task))
    (K.tasks k)
  |> List.sort Stdlib.compare

let endpoint_component ep =
  if String.length ep > 3 && String.sub ep (String.length ep - 3) 3 = ".ep" then
    Some (String.sub ep 0 (String.length ep - 3))
  else None

let conformance ?config:_ manifests k =
  let manifests = dedupe manifests in
  let find n = List.find_opt (fun m -> m.Manifest.name = n) manifests in
  let pairs = declared_pairs manifests in
  let declared caller target = List.mem (caller, target) pairs in
  let facts = authority k in
  let over = ref [] in
  let flag o_task o_endpoint o_reason = over := { o_task; o_endpoint; o_reason } :: !over in
  (* 1. every capability must be justified by the manifest graph *)
  List.iter
    (fun f ->
      match endpoint_component f.c_endpoint with
      | None ->
        if find f.c_task <> None then
          flag f.c_task f.c_endpoint
            "capability onto an endpoint outside the manifest graph"
      | Some target ->
        if find target = None then ()
        else if find f.c_task = None then
          flag f.c_task f.c_endpoint
            "capability held by a task no manifest declares"
        else if f.c_task = target then begin
          if f.c_send then
            flag f.c_task f.c_endpoint
              "send capability onto its own endpoint; manifests cannot declare self-channels"
        end
        else begin
          if f.c_recv then
            flag f.c_task f.c_endpoint
              (Printf.sprintf
                 "receive capability on %s's endpoint: it can intercept %s's requests"
                 target target);
          if f.c_send && not (declared f.c_task target) then
            flag f.c_task f.c_endpoint
              (Printf.sprintf
                 "send capability but the manifest declares no channel %s -> %s"
                 f.c_task target)
        end)
    facts;
  (* 2. badge discrimination: a client-discriminating target must see
     each caller under a distinct badge *)
  List.iter
    (fun m ->
      if m.Manifest.discriminates_clients then begin
        let target = m.Manifest.name in
        let senders =
          List.filter
            (fun f ->
              f.c_send && f.c_task <> target
              && endpoint_component f.c_endpoint = Some target
              && find f.c_task <> None)
            facts
        in
        let by_badge = Hashtbl.create 4 in
        List.iter
          (fun f ->
            let others =
              Option.value ~default:[] (Hashtbl.find_opt by_badge f.c_badge)
            in
            if not (List.mem f.c_task others) then
              Hashtbl.replace by_badge f.c_badge (f.c_task :: others))
          senders;
        Hashtbl.iter
          (fun badge tasks ->
            if List.length tasks >= 2 then
              List.iter
                (fun t ->
                  flag t (target ^ ".ep")
                    (Printf.sprintf
                       "badge %d is shared by %s on a client-discriminating target: confused-deputy defence defeated"
                       badge
                       (String.concat ", " (List.sort String.compare tasks))))
                tasks)
          by_badge
      end)
    manifests;
  (* 3. spatial isolation: components may share a physical frame only if
     a channel between them is declared (de-facto sharing is exactly
     where isolation designs rot) *)
  let comp_tasks =
    List.filter (fun t -> find (K.task_name t) <> None) (K.tasks k)
  in
  let rec pairs_of = function
    | [] -> []
    | t :: rest -> List.map (fun u -> (t, u)) rest @ pairs_of rest
  in
  List.iter
    (fun (a, b) ->
      let na = K.task_name a and nb = K.task_name b in
      if na <> nb then begin
        let fa = K.task_frames a and fb = K.task_frames b in
        let shared = List.filter (fun f -> List.mem f fb) fa in
        if shared <> [] && not (declared na nb) && not (declared nb na) then
          flag (min na nb) (max na nb ^ ".ep")
            (Printf.sprintf
               "shares physical frame %d with %s but no channel is declared"
               (List.hd shared) (max na nb))
      end)
    (pairs_of comp_tasks);
  (* 4. under-provision: every declared pair needs a send capability *)
  let under =
    List.filter_map
      (fun (caller, target) ->
        let granted =
          List.exists
            (fun f ->
              f.c_send && f.c_task = caller
              && endpoint_component f.c_endpoint = Some target)
            facts
        in
        if granted then None
        else
          let services =
            match find caller with
            | None -> []
            | Some m ->
              List.filter_map
                (fun c ->
                  if c.Manifest.target = target then Some c.Manifest.service
                  else None)
                m.Manifest.connects_to
              |> List.sort_uniq String.compare
          in
          Some { u_caller = caller; u_target = target; u_services = services })
      (List.filter (fun (_, target) -> find target <> None) pairs)
  in
  { facts;
    over = List.sort_uniq Stdlib.compare !over;
    under = List.sort Stdlib.compare under }

let conforms c = c.over = [] && c.under = []

let conformance_diagnostics c =
  List.map
    (fun o ->
      Diagnostic.v ~rule_id:"L017-undeclared-authority" ~severity:Diagnostic.Error
        ~component:o.o_task ~service:o.o_endpoint ~message:o.o_reason
        ~fix_hint:"revoke the capability, or declare the channel in the manifest" ())
    c.over
  @ List.map
      (fun u ->
        Diagnostic.v ~rule_id:"L018-under-provision" ~severity:Diagnostic.Warning
          ~component:u.u_caller ~service:u.u_target
          ~message:
            (Printf.sprintf
               "declared channel %s -> %s.{%s} has no send capability in the kernel"
               u.u_caller u.u_target (String.concat ", " u.u_services))
          ~fix_hint:"grant the capability at deploy time, or delete the declared channel" ())
      c.under
  |> List.sort Diagnostic.compare

let check_deployment ?config manifests =
  match provision manifests with
  | Error e -> Error ("provision: " ^ e)
  | Ok d ->
    let c = conformance ?config manifests d.d_kernel in
    if not (conforms c) then
      Error
        (Printf.sprintf "deployment does not conform to its manifest: %s"
           (String.concat "; "
              (List.map Diagnostic.subject (conformance_diagnostics c))))
    else begin
      match (analyze ?config manifests).verdict with
      | Secure -> Ok ()
      | Leak leaks ->
        Error
          (Printf.sprintf "manifest is not leak-free: secret of %s reaches %s"
             (List.hd leaks).l_secret (List.hd leaks).l_sink)
    end

(* --- reports ----------------------------------------------------------------- *)

let path_str p = String.concat " -> " p

let render_text ~file ?conformance:conf r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%s: %d components, %d flow edges\n" file (List.length r.labels)
    (List.length r.edges);
  add "labels:\n";
  List.iter
    (fun (n, l) -> add "  %-16s %s\n" n (Flow_lattice.to_string l))
    r.labels;
  (match r.taint_hits with
   | [] -> ()
   | hits ->
     add "taint into secret holders:\n";
     List.iter
       (fun h ->
         add "  %s -> %s (%s): %s\n" h.t_source h.t_sink
           (if h.t_direct then "direct" else "transitive")
           (path_str h.t_path))
       hits);
  (match r.verdict with
   | Secure -> add "verdict: secure (no secret reaches an exposed component)\n"
   | Leak leaks ->
     add "verdict: LEAK (%d)\n" (List.length leaks);
     List.iter
       (fun l ->
         add "  secret of %s reaches %s: %s\n" l.l_secret l.l_sink
           (path_str l.l_path))
       leaks);
  (match conf with
   | None -> ()
   | Some c ->
     add "conformance: %d de-facto capabilities\n" (List.length c.facts);
     if conforms c then add "  kernel state matches the manifest\n"
     else begin
       List.iter
         (fun o -> add "  over-privilege %s on %s: %s\n" o.o_task o.o_endpoint o.o_reason)
         c.over;
       List.iter
         (fun u ->
           add "  under-provision %s -> %s.{%s}\n" u.u_caller u.u_target
             (String.concat ", " u.u_services))
         c.under
     end);
  Buffer.contents buf

let render_json ~file ?conformance:conf r =
  let js = Diagnostic.json_string in
  let arr xs = "[" ^ String.concat "," xs ^ "]" in
  let strs xs = arr (List.map js xs) in
  let labels =
    arr
      (List.map
         (fun (n, l) ->
           Printf.sprintf "{\"component\":%s,\"label\":%s}" (js n)
             (js (Flow_lattice.to_string l)))
         r.labels)
  in
  let taint =
    arr
      (List.map
         (fun h ->
           Printf.sprintf
             "{\"source\":%s,\"sink\":%s,\"direct\":%b,\"path\":%s}"
             (js h.t_source) (js h.t_sink) h.t_direct (strs h.t_path))
         r.taint_hits)
  in
  let leaks =
    arr
      (List.map
         (fun l ->
           Printf.sprintf "{\"secret\":%s,\"sink\":%s,\"path\":%s}" (js l.l_secret)
             (js l.l_sink) (strs l.l_path))
         r.leaks)
  in
  let conf_json =
    match conf with
    | None -> ""
    | Some c ->
      Printf.sprintf ",\"conformance\":{\"capabilities\":%d,\"over\":%s,\"under\":%s}"
        (List.length c.facts)
        (arr
           (List.map
              (fun o ->
                Printf.sprintf "{\"task\":%s,\"endpoint\":%s,\"reason\":%s}"
                  (js o.o_task) (js o.o_endpoint) (js o.o_reason))
              c.over))
        (arr
           (List.map
              (fun u ->
                Printf.sprintf "{\"caller\":%s,\"target\":%s,\"services\":%s}"
                  (js u.u_caller) (js u.u_target) (strs u.u_services))
              c.under))
  in
  Printf.sprintf
    "{\"file\":%s,\"verdict\":%s,\"labels\":%s,\"taint\":%s,\"leaks\":%s%s}" (js file)
    (js (match r.verdict with Secure -> "secure" | Leak _ -> "leak"))
    labels taint leaks conf_json

let to_dot manifests r =
  let manifests = dedupe manifests in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let label_of n =
    Option.value ~default:Flow_lattice.public (List.assoc_opt n r.labels)
  in
  add "digraph flow {\n  rankdir=LR;\n  node [shape=box, style=filled];\n";
  List.iter
    (fun m ->
      let n = m.Manifest.name in
      let l = label_of n in
      let colour =
        if Flow_lattice.is_secret l then "#f4b6b6"
        else if Flow_lattice.is_tainted l then "#f8d7a0"
        else "#e6e6e6"
      in
      add "  \"%s\" [fillcolor=\"%s\", label=\"%s\\n%s\"];\n" n colour n
        (Flow_lattice.to_string l))
    manifests;
  List.iter
    (fun m ->
      List.iter
        (fun c ->
          if c.Manifest.vetted then
            add "  \"%s\" -> \"%s\" [label=\"%s (vetted)\", style=dashed];\n"
              m.Manifest.name c.Manifest.target c.Manifest.service
          else
            add "  \"%s\" -> \"%s\" [label=\"%s\"];\n" m.Manifest.name
              c.Manifest.target c.Manifest.service)
        m.Manifest.connects_to)
    manifests;
  add "}\n";
  Buffer.contents buf

(* --- per-trust-domain verdicts ----------------------------------------------

   Tenant attribution: a leak belongs to the tenant of the component
   whose secret escapes, a taint hit to the tenant of the tainted
   source. The cross-tenant filters pick out witnesses whose two ends
   sit in *disjoint* trust domains — exactly what a multi-tenant
   deployment must keep empty so one tenant's taint is never pinned on
   another. The root path [] is disjoint from nothing: shared root
   infrastructure may appear in any tenant's evidence. *)

let trust_paths manifests =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun m ->
      if not (Hashtbl.mem tbl m.Manifest.name) then
        Hashtbl.add tbl m.Manifest.name m.Manifest.trust_domain)
    manifests;
  fun n -> Option.value ~default:[] (Hashtbl.find_opt tbl n)

let tenants manifests =
  List.filter_map Manifest.tenant_of manifests |> List.sort_uniq String.compare

let tenant_verdicts manifests r =
  let path = trust_paths manifests in
  let tenant n = match path n with [] -> None | t :: _ -> Some t in
  List.map
    (fun t ->
      let leaks = List.filter (fun l -> tenant l.l_secret = Some t) r.leaks in
      (t, if leaks = [] then Secure else Leak leaks))
    (tenants manifests)

let cross_tenant_hits manifests r =
  let path = trust_paths manifests in
  List.filter
    (fun h -> Manifest.trust_domains_disjoint (path h.t_source) (path h.t_sink))
    r.taint_hits

let cross_tenant_leaks manifests r =
  let path = trust_paths manifests in
  List.filter
    (fun l -> Manifest.trust_domains_disjoint (path l.l_secret) (path l.l_sink))
    r.leaks

let render_domain_verdicts manifests r =
  match tenants manifests with
  | [] -> "" (* flat fleet: render nothing, outputs stay byte-identical *)
  | _ :: _ ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf "per-domain verdicts:\n";
    List.iter
      (fun (t, v) ->
        Buffer.add_string buf
          (match v with
           | Secure -> Printf.sprintf "  tenant %s: secure\n" t
           | Leak ls ->
             Printf.sprintf "  tenant %s: %d leak(s)\n" t (List.length ls)))
      (tenant_verdicts manifests r);
    let xl = cross_tenant_leaks manifests r in
    let xh = cross_tenant_hits manifests r in
    List.iter
      (fun l ->
        Buffer.add_string buf
          (Printf.sprintf "  CROSS-TENANT leak: %s -> %s via %s\n" l.l_secret
             l.l_sink (String.concat " -> " l.l_path)))
      xl;
    List.iter
      (fun h ->
        Buffer.add_string buf
          (Printf.sprintf "  CROSS-TENANT taint: %s -> %s via %s\n" h.t_source
             h.t_sink (String.concat " -> " h.t_path)))
      xh;
    if xl = [] && xh = [] then
      Buffer.add_string buf "  cross-tenant witnesses: none\n";
    Buffer.contents buf
