open Lt_crypto
open Lt_kernel
open Lt_tpm

type comp_state = {
  task : Kernel.task;
  endpoint : Kernel.endpoint;
  server_tid : int;
}

exception Task_state of comp_state

let measure_code code = Sha256.digest ("microkernel-task|" ^ code)

let store_pages = 2

let properties ~with_tpm =
  { Substrate.substrate_name =
      (if with_tpm then "microkernel+tpm" else "microkernel");
    concurrent_components = true;
    mutually_isolated = true;
    defends =
      ([ Substrate.Remote_software; Substrate.Local_software ]
       @ if with_tpm then [ Substrate.Physical_code_swap ] else []);
    tcb =
      ([ ("microkernel", 10_000); ("mmu+iommu-hardware", 2_000) ]
       @ if with_tpm then [ ("tpm", 5_000) ] else []);
    shared_cache_with_host = true;
    progress_guaranteed = true }

let make machine policy ?tpm ?(boot_pcr = 10) ?(rng = Drbg.create 0x6b65726eL) () =
  let k = Kernel.create machine policy in
  (* software sealing root when no TPM is present: lost at reboot and
     not bound to hardware -- exactly as weak as the paper implies *)
  let session_secret = Drbg.bytes rng 32 in
  let state_of c =
    match Substrate.component_state c with
    | Task_state s -> s
    | _ -> invalid_arg "substrate_kernel: foreign component"
  in
  (* crash = the server thread is killed where it stands; any in-flight
     IPC never gets its reply. The sealing root survives (session secret
     or TPM), so a relaunched instance can unseal its predecessor's
     blobs. *)
  let dead : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let tables : (string, (string, string) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let crash, is_alive_mark, revive =
    Substrate.lifecycle ~dead
      ~teardown:(fun c -> Kernel.kill_thread k (state_of c).server_tid)
      ()
  in
  let is_alive c =
    is_alive_mark c && Kernel.thread_alive k (state_of c).server_tid
  in
  let launch ~name ~code ~services =
    let measurement = measure_code code in
    (match tpm with
     | Some tpm -> Tpm.extend tpm boot_pcr measurement
     | None -> ());
    let task = Kernel.create_task k ~name ~partition:name in
    match Kernel.map_memory k task ~vpage:0 ~pages:store_pages Lt_hw.Mmu.rw with
    | Error Kernel.Out_of_frames ->
      Error (Printf.sprintf "launch %s: out of physical frames" name)
    | Ok () ->
    let endpoint = Kernel.create_endpoint k ~name:(name ^ ".ep") in
    let recv_cap =
      Kernel.grant k task endpoint ~rights:{ send = false; recv = true } ~badge:0
    in
    let table : (string, string) Hashtbl.t = Hashtbl.create 8 in
    Hashtbl.replace tables name table;
    let mirror () =
      (* persist the store into the task's own pages: plain DRAM, which
         is what makes the physical-attack experiment interesting *)
      let blob =
        Wire.encode
          (Hashtbl.fold (fun key v acc -> Wire.encode [ key; v ] :: acc) table []
           |> List.sort Stdlib.compare)
      in
      if String.length blob <= store_pages * Lt_hw.Mmu.page_size then
        User.mem_write ~vaddr:0 blob
    in
    let seal_key =
      match tpm with
      | Some _ -> None (* TPM-backed, below *)
      | None -> Some (Hkdf.derive ~secret:session_secret ~salt:"mk-seal" ~info:measurement 16)
    in
    let facilities =
      { Substrate.f_seal =
          (fun data ->
            match (tpm, seal_key) with
            | Some tpm, _ ->
              Tpm.sealed_to_wire (Tpm.seal tpm ~selection:[ boot_pcr ] data)
            | None, Some key ->
              let nonce = String.sub (Sha256.digest (name ^ data)) 0 Speck.nonce_size in
              Speck.Aead.to_wire (Speck.Aead.encrypt ~key ~nonce ~ad:"mk-seal" data)
            | None, None -> assert false);
        f_unseal =
          (fun wire ->
            match (tpm, seal_key) with
            | Some tpm, _ ->
              Option.bind (Tpm.sealed_of_wire wire) (Tpm.unseal tpm)
            | None, Some key ->
              Option.bind (Speck.Aead.of_wire wire)
                (Speck.Aead.decrypt ~key ~ad:"mk-seal")
            | None, None -> assert false);
        f_store =
          (fun ~key data ->
            Hashtbl.replace table key data;
            mirror ());
        f_load = (fun ~key -> Hashtbl.find_opt table key) }
    in
    let server () =
      let rec loop () =
        let _badge, m, reply = User.recv ~cap:recv_cap in
        let response =
          match Wire.decode m.Sys.payload with
          | Some [ fn; arg ] ->
            (match List.assoc_opt fn services with
             | Some service ->
               (try Wire.encode [ "ok"; service facilities arg ]
                with exn -> Wire.encode [ "err"; Printexc.to_string exn ])
             | None -> Wire.encode [ "err"; Printf.sprintf "no entry point %S" fn ])
          | _ -> Wire.encode [ "err"; "malformed request" ]
        in
        (match reply with
         | Some handle -> User.reply handle (Sys.msg response)
         | None -> ());
        loop ()
      in
      loop ()
    in
    let server_tid = Kernel.create_thread k task ~name:(name ^ ".srv") ~prio:5 server in
    revive name;
    Ok
      (Substrate.make_component ~name ~measurement
         ~state:(Task_state { task; endpoint; server_tid }))
  in
  let invoke_counter = ref 0 in
  let span_attrs =
    [ ("substrate", (properties ~with_tpm:(tpm <> None)).Substrate.substrate_name) ]
  in
  let invoke c ~fn arg =
    let s = state_of c in
    if not (is_alive_mark c) then
      Error (Substrate.crashed_error (Substrate.component_name c))
    else if not (Kernel.thread_alive k s.server_tid) then
      Error "component destroyed"
    else
      Lt_obs.Trace.with_span ~kind:"ipc-rpc"
        ~name:(Lt_obs.Trace.span_name (Substrate.component_name c) fn)
        ~attrs:span_attrs
        (fun () ->
      incr invoke_counter;
      let client_task =
        Kernel.create_task k
          ~name:(Printf.sprintf "client%d" !invoke_counter)
          ~partition:(Kernel.task_partition s.task)
      in
      let send_cap =
        Kernel.grant k client_task s.endpoint
          ~rights:{ send = true; recv = false } ~badge:!invoke_counter
      in
      let result = ref (Error "component did not reply") in
      let _ =
        Kernel.create_thread k client_task ~name:"call" ~prio:5 (fun () ->
            let r = User.call ~cap:send_cap (Sys.msg (Wire.encode [ fn; arg ])) in
            result :=
              (match Wire.decode r.Sys.payload with
               | Some [ "ok"; out ] -> Ok out
               | Some [ "err"; e ] -> Error e
               | _ -> Error "malformed reply"))
      in
      (* seeded chaos point: the kernel kills the server task after the
         client has committed to the send — a death mid-IPC, observed by
         the caller as a reply that never comes *)
      if Fault_point.fires "microkernel/kill-mid-ipc" then begin
        Kernel.kill_thread k s.server_tid;
        Lt_obs.Trace.event ~kind:"fault" ~name:"kill-mid-ipc"
          ~attrs:(Lt_obs.Trace.attr "component" (Substrate.component_name c))
          ()
      end;
      ignore (Kernel.run k);
      (match !result with
       | Error e -> Lt_obs.Trace.fail_span e
       | Ok _ -> ());
      !result)
  in
  let attest c ~nonce ~claim =
    match tpm with
    | None ->
      Error "microkernel substrate has no hardware trust anchor (attach a TPM)"
    | Some tpm ->
      let ev_no_sig =
        { Attestation.ev_substrate = "microkernel+tpm";
          ev_measurement = Substrate.component_measurement c;
          ev_nonce = nonce;
          ev_claim = claim;
          ev_proof = Attestation.Rsa_quote { signature = ""; cert = Tpm.ek_cert tpm } }
      in
      let signature = Tpm.ak_sign tpm ~body:(Attestation.signed_body ev_no_sig) in
      Ok
        { ev_no_sig with
          Attestation.ev_proof =
            Attestation.Rsa_quote { signature; cert = Tpm.ek_cert tpm } }
  in
  let t =
    { Substrate.properties = properties ~with_tpm:(tpm <> None);
      launch;
      invoke;
      attest;
      measure = (fun ~code -> measure_code code);
      destroy = (fun c -> Kernel.kill_thread k (state_of c).server_tid);
      crash;
      is_alive;
      snap_layers = [] }
  in
  t.Substrate.snap_layers <-
    [ Lt_hw.Machine.layer machine;
      Kernel.layer k;
      Substrate.adapter_layer ~name:"substrate:microkernel" ~dead ~tables
        ~extra_take:
          [ (fun () -> Lt_world.Snapshottable.save_ref invoke_counter) ]
        ~extra_digest:(fun d -> Lt_world.Digest64.int d !invoke_counter)
        () ]
    @ (match tpm with Some tpm -> [ Tpm.layer tpm ] | None -> []);
  (t, k)
