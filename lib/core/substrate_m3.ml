open Lt_crypto
module Noc = Lt_noc.Noc

exception Tile_state of Noc.tile

let properties =
  { Substrate.substrate_name = "m3-noc";
    concurrent_components = true;
    mutually_isolated = true;
    defends =
      [ Substrate.Remote_software; Substrate.Local_software;
        Substrate.Physical_memory ];
    tcb = [ ("m3-kernel-tile", 6_000); ("dtu-hardware", 2_000) ];
    shared_cache_with_host = false;
    progress_guaranteed = true }

let measure_code code = Sha256.digest ("m3-tile-program|" ^ code)

let make rng ~ca_name ~ca_key ~tiles () =
  let chip = Noc.create ~tiles ~scratchpad_size:8192 in
  let kernel_key = Rsa.generate ~bits:512 rng in
  let kernel_cert = Cert.issue ~ca_name ~ca_key ~subject:"m3-kernel" kernel_key.Rsa.pub in
  let session_secret = Drbg.bytes rng 32 in
  let next_tile = ref 1 in
  let dead : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let tables : (string, (string, string) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  (* crash marks the tile's program dead; the tile itself is not reused.
     A relaunch gets a fresh tile with an empty scratchpad but the same
     measurement-derived seal key. *)
  let crash, is_alive, revive = Substrate.lifecycle ~dead () in
  let launch ~name ~code ~services =
    revive name;
    if !next_tile >= tiles then Error "m3: no free compute tile"
    else begin
      let tile = !next_tile in
      incr next_tile;
      let measurement = measure_code code in
      let seal_key =
        Hkdf.derive ~secret:session_secret ~salt:"m3-seal" ~info:measurement 16
      in
      let table : (string, string) Hashtbl.t = Hashtbl.create 8 in
      Hashtbl.replace tables name table;
      let mirror () =
        (* state lives in the tile's on-chip scratchpad *)
        let blob =
          Wire.encode
            (Hashtbl.fold (fun k v acc -> Wire.encode [ k; v ] :: acc) table []
             |> List.sort Stdlib.compare)
        in
        if String.length blob <= 8192 then Noc.spm_write chip ~tile ~off:0 blob
      in
      let facilities =
        { Substrate.f_seal =
            (fun data ->
              let nonce = String.sub (Sha256.digest data) 0 Speck.nonce_size in
              Speck.Aead.to_wire
                (Speck.Aead.encrypt ~key:seal_key ~nonce ~ad:"m3-seal" data));
          f_unseal =
            (fun wire ->
              Option.bind (Speck.Aead.of_wire wire)
                (Speck.Aead.decrypt ~key:seal_key ~ad:"m3-seal"));
          f_store =
            (fun ~key data ->
              Hashtbl.replace table key data;
              mirror ());
          f_load = (fun ~key -> Hashtbl.find_opt table key) }
      in
      let program request =
        match Wire.decode request with
        | Some [ fn; arg ] ->
          (match List.assoc_opt fn services with
           | Some service -> Wire.encode [ "ok"; service facilities arg ]
           | None -> Wire.encode [ "err"; Printf.sprintf "no entry point %S" fn ])
        | _ -> Wire.encode [ "err"; "malformed request" ]
      in
      Noc.install_program chip ~tile ~code program;
      (* the kernel wires the channels: the tile accepts messages and the
         kernel tile gets a send endpoint towards it *)
      Noc.configure chip ~by:Noc.kernel_tile ~tile ~ep:0 Noc.Receive;
      Noc.configure chip ~by:Noc.kernel_tile ~tile:Noc.kernel_tile ~ep:tile
        (Noc.Send { target = tile; credits = 8 });
      Ok (Substrate.make_component ~name ~measurement ~state:(Tile_state tile))
    end
  in
  let tile_of c =
    match Substrate.component_state c with
    | Tile_state tile -> tile
    | _ -> invalid_arg "substrate_m3: foreign component"
  in
  let invoke c ~fn arg =
    if not (is_alive c) then
      Error (Substrate.crashed_error (Substrate.component_name c))
    else
    let tile = tile_of c in
    match Noc.send chip ~from_tile:Noc.kernel_tile ~ep:tile (Wire.encode [ fn; arg ]) with
    | Error e -> Error e
    | Ok reply ->
      (match Wire.decode reply with
       | Some [ "ok"; out ] -> Ok out
       | Some [ "err"; e ] -> Error e
       | _ -> Error "malformed tile reply")
  in
  let attest c ~nonce ~claim =
    let tile = tile_of c in
    match Noc.measurement chip ~tile with
    | None -> Error "tile has no program"
    | Some measurement ->
      let ev_no_sig =
        { Attestation.ev_substrate = "m3-noc";
          ev_measurement = measurement;
          ev_nonce = nonce;
          ev_claim = claim;
          ev_proof = Attestation.Rsa_quote { signature = ""; cert = kernel_cert } }
      in
      let signature = Rsa.sign kernel_key (Attestation.signed_body ev_no_sig) in
      Ok
        { ev_no_sig with
          Attestation.ev_proof = Attestation.Rsa_quote { signature; cert = kernel_cert } }
  in
  let t =
    { Substrate.properties;
      launch;
      invoke;
      attest;
      measure = (fun ~code -> measure_code code);
      destroy = (fun _ -> ());
      crash;
      is_alive;
      snap_layers = [] }
  in
  t.Substrate.snap_layers <-
    [ Lt_world.Snapshottable.make ~name:"noc"
        ~take:(fun () -> Noc.take_snapshot chip)
        ~digest:(fun () -> Noc.state_digest chip);
      Substrate.adapter_layer ~name:"substrate:m3-noc" ~dead ~tables
        ~extra_take:[ (fun () -> Lt_world.Snapshottable.save_ref next_tile) ]
        ~extra_digest:(fun d -> Lt_world.Digest64.int d !next_tile)
        () ];
  (t, chip)
