type summary = { errors : int; warnings : int; infos : int }

let run ?(config = Lint_rules.default_config) manifests =
  let ctx = Lint_rules.make_ctx manifests in
  List.concat_map
    (fun (r : Lint_rules.rule) ->
      List.concat_map (r.Lint_rules.check config ctx) manifests)
    Lint_rules.all
  |> List.sort_uniq Diagnostic.compare

let locate_all files diags =
  let loc_of name =
    List.find_map
      (fun (file, spans) ->
        List.find_opt
          (fun s -> s.Manifest_file.sp_manifest.Manifest.name = name)
          spans
        |> Option.map (fun s ->
               { Diagnostic.file; line = s.Manifest_file.sp_line }))
      files
  in
  List.map
    (fun d ->
      match loc_of d.Diagnostic.component with
      | Some loc -> Diagnostic.with_loc loc d
      | None -> d)
    diags
  |> List.sort Diagnostic.compare

let locate ~file spans diags = locate_all [ (file, spans) ] diags

let summarize diags =
  List.fold_left
    (fun acc (d : Diagnostic.t) ->
      match d.Diagnostic.severity with
      | Diagnostic.Error -> { acc with errors = acc.errors + 1 }
      | Diagnostic.Warning -> { acc with warnings = acc.warnings + 1 }
      | Diagnostic.Info -> { acc with infos = acc.infos + 1 })
    { errors = 0; warnings = 0; infos = 0 }
    diags

let has_errors diags =
  List.exists (fun d -> d.Diagnostic.severity = Diagnostic.Error) diags

let render_text ~file diags =
  let s = summarize diags in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s: %d diagnostics (%d errors, %d warnings, %d info)\n"
       file
       (List.length diags)
       s.errors s.warnings s.infos);
  List.iter
    (fun d ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (Diagnostic.to_text d);
      Buffer.add_char buf '\n')
    diags;
  Buffer.contents buf

let render_json ~file diags =
  let s = summarize diags in
  Printf.sprintf
    "{\"file\":%s,\"summary\":{\"errors\":%d,\"warnings\":%d,\"infos\":%d},\"diagnostics\":[%s]}"
    (Diagnostic.json_string file)
    s.errors s.warnings s.infos
    (String.concat "," (List.map Diagnostic.to_json diags))

let catalogue () =
  List.map
    (fun (r : Lint_rules.rule) ->
      (r.Lint_rules.id,
       r.Lint_rules.severity,
       r.Lint_rules.summary,
       r.Lint_rules.paper_ref))
    Lint_rules.all

let catalogue_text () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-26s %-8s %-8s %s\n" "rule" "severity" "paper" "meaning");
  List.iter
    (fun (id, sev, summary, paper) ->
      Buffer.add_string buf
        (Printf.sprintf "%-26s %-8s %-8s %s\n" id
           (Diagnostic.severity_to_string sev)
           paper summary))
    (catalogue ());
  Buffer.contents buf

(* --- per-trust-domain verdicts --------------------------------------------- *)

let render_domain_verdicts manifests diags =
  match
    List.filter_map Manifest.tenant_of manifests
    |> List.sort_uniq String.compare
  with
  | [] -> "" (* flat fleet: render nothing, outputs stay byte-identical *)
  | tenants ->
    let tenant_of_component =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun m ->
          if not (Hashtbl.mem tbl m.Manifest.name) then
            Hashtbl.add tbl m.Manifest.name (Manifest.tenant_of m))
        manifests;
      fun n -> Option.join (Hashtbl.find_opt tbl n)
    in
    let buf = Buffer.create 256 in
    Buffer.add_string buf "per-domain verdicts:\n";
    List.iter
      (fun t ->
        let s =
          summarize
            (List.filter
               (fun d -> tenant_of_component d.Diagnostic.component = Some t)
               diags)
        in
        Buffer.add_string buf
          (Printf.sprintf "  tenant %s: %d errors, %d warnings, %d info\n" t
             s.errors s.warnings s.infos))
      tenants;
    Buffer.contents buf
