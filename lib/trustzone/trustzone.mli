(** ARM TrustZone: two worlds on one CPU (§II-B).

    The secure world completely controls the normal world; the bus
    carries the NS bit so hardware can tell the worlds apart. There is
    exactly one secure world and one normal world — multiplexing several
    trusted services inside the secure world relies on *secondary*
    isolation by the secure-world OS, which this model makes explicit:
    services share the secure world's memory region, and
    {!breach_service} demonstrates the blast radius.

    Trust anchoring follows the smart-meter example (§III-C): the secure
    world image is signature-checked by boot-ROM code, and a per-device
    key fused by the manufacturer (readable only with the NS bit clear)
    supports software attestation to a party that shares the key. *)

type t

(** What a secure service sees when invoked: its private store, the
    device fuses, and the world's measurement state. *)
type ctx

type handler = ctx -> string -> string

(** [install machine ~secure_pages ~vendor_pub] carves a secure memory
    range out of DRAM (TZASC), loads the boot-ROM stub and returns the
    unbooted TrustZone state. *)
val install :
  Lt_hw.Machine.t -> secure_pages:int -> vendor_pub:Lt_crypto.Rsa.public -> t

(** [boot t ~image] verifies the secure-world image signature against
    the ROM-anchored vendor key; only a correctly signed image yields a
    running secure world. Returns the image measurement on success. *)
val boot : t -> image:Lt_tpm.Boot.stage -> (string, string) result

val booted : t -> bool

(** [measurement t] is the booted secure-world image hash, if any. *)
val measurement : t -> string option

(** [register_service t ~name handler] adds a trusted service to the
    secure world OS dispatch table. Requires [booted t]. *)
val register_service : t -> name:string -> handler -> unit

(** [smc t ~service request] is the secure monitor call: world switch,
    dispatch, world switch back. Fails when the world is not booted or
    the service unknown. Charges world-switch ticks on the machine
    clock. *)
val smc : t -> service:string -> string -> (string, string) result

(** [smc_count t] — number of world switches taken so far. *)
val smc_count : t -> int

(** {2 Inside the secure world (for handlers)} *)

(** [fuse_read ctx ~name] reads a fuse with the NS bit clear — this is
    how a secure service obtains the per-device key the normal world can
    never see. *)
val fuse_read : ctx -> name:string -> string option

(** [store ctx ~key data] / [load ctx ~key] — the service's slice of the
    secure memory region. The bytes physically live in off-chip DRAM:
    software in the normal world cannot touch them, but a physical
    attacker can (TrustZone does not encrypt memory — §II-D). *)
val store : ctx -> key:string -> string -> unit

val load : ctx -> key:string -> string option

(** [attest ctx ~device_key_name ~nonce ~claim] is software attestation:
    HMAC over (nonce, secure-world measurement, claim) under the fused
    device key. A verifier sharing the key checks it with
    {!verify_attestation}. *)
val attest : ctx -> device_key_name:string -> nonce:string -> claim:string ->
  (string, string) result

val verify_attestation :
  device_key:string -> expected_measurement:string -> nonce:string ->
  claim:string -> string -> bool

(** {2 Attack surface} *)

(** [normal_world_read t ~addr ~len] attempts a normal-world (NS=1) bus
    read — used by tests to show the secure range is unreachable. *)
val normal_world_read : t -> addr:int -> len:int -> (string, Lt_hw.Bus.denial) result

(** [secure_range t] is [(base, size)] of the protected region. *)
val secure_range : t -> int * int

(** [breach_service t ~name] simulates a compromised secure service and
    returns every (service, key, value) it can read — the whole world's
    store, demonstrating that TrustZone gives no mutual isolation
    between trusted components sharing the secure world. *)
val breach_service : t -> name:string -> (string * string * string) list

(** Capture secure-world services, the protected store and SMC counter;
    the machine is captured separately. *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
