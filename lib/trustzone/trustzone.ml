open Lt_crypto
open Lt_hw

let world_switch_cost = 30

type t = {
  machine : Machine.t;
  vendor_pub : Rsa.public;
  sec_base : int;
  sec_size : int;
  services : (string, handler) Hashtbl.t;
  (* mirror of the serialized secure store; the bytes of record live in
     the protected DRAM range *)
  kv : (string * string, string) Hashtbl.t;
  mutable image_hash : string option;
  mutable smcs : int;
}

and ctx = { tz : t; svc : string }

and handler = ctx -> string -> string

let rom_stub = "tz-boot-rom: verify secure world image signature, then jump"

let install machine ~secure_pages ~vendor_pub =
  let page = Mmu.page_size in
  (match Frame_alloc.alloc_n machine.Machine.dram_frames secure_pages with
   | None -> invalid_arg "Trustzone.install: not enough DRAM for secure world"
   | Some frames ->
     (* require a contiguous range for the protection controller *)
     let sorted = List.sort Stdlib.compare frames in
     let base = List.hd sorted * page in
     let size = secure_pages * page in
     let contiguous =
       List.for_all2
         (fun p i -> p = List.hd sorted + i)
         sorted
         (List.init secure_pages (fun i -> i))
     in
     if not contiguous then invalid_arg "Trustzone.install: non-contiguous frames";
     Bus.mark_secure machine.Machine.bus ~base ~size;
     Machine.load_rom machine ~off:0 rom_stub;
     { machine;
       vendor_pub;
       sec_base = base;
       sec_size = size;
       services = Hashtbl.create 8;
       kv = Hashtbl.create 16;
       image_hash = None;
       smcs = 0 })

let boot t ~image =
  let open Lt_tpm in
  match Boot.run_chain (Boot.Secure_boot { vendor_pub = t.vendor_pub }) [ image ] with
  | { refused = Some (_, reason); _ } ->
    Error (Printf.sprintf "secure world refused: %s" reason)
  | { refused = None; _ } ->
    let m = Boot.measure image in
    t.image_hash <- Some m;
    Ok m

let booted t = t.image_hash <> None

let measurement t = t.image_hash

let register_service t ~name handler =
  if not (booted t) then invalid_arg "Trustzone.register_service: world not booted";
  Hashtbl.replace t.services name handler

(* serialize the whole key-value store into the protected range so the
   secrets physically exist in DRAM (visible to a physical attacker,
   invisible to normal-world software) *)
let flush_store t =
  let buf = Buffer.create 256 in
  Hashtbl.iter
    (fun (svc, key) v ->
      Buffer.add_string buf
        (Printf.sprintf "%03d%s%03d%s%06d%s" (String.length svc) svc
           (String.length key) key (String.length v) v))
    t.kv;
  let data = Buffer.contents buf in
  let data =
    if String.length data > t.sec_size then
      invalid_arg "Trustzone: secure store overflow"
    else data
  in
  match
    Bus.write t.machine.Machine.bus ~requester:(Bus.Cpu { secure = true })
      ~addr:t.sec_base data
  with
  | Ok () -> ()
  | Error _ -> assert false (* the secure world can always reach its range *)

let store_ctx t svc key data =
  Hashtbl.replace t.kv (svc, key) data;
  flush_store t

let load_ctx t svc key = Hashtbl.find_opt t.kv (svc, key)

let smc t ~service request =
  if not (booted t) then Error "secure world not booted"
  else
    match Hashtbl.find_opt t.services service with
    | None -> Error (Printf.sprintf "unknown secure service %S" service)
    | Some handler ->
      t.smcs <- t.smcs + 1;
      Clock.advance t.machine.Machine.clock world_switch_cost;
      let response = handler { tz = t; svc = service } request in
      Clock.advance t.machine.Machine.clock world_switch_cost;
      Ok response

let smc_count t = t.smcs

let fuse_read ctx ~name = Fuse.read ctx.tz.machine.Machine.fuses ~name ~secure:true

let store ctx ~key data = store_ctx ctx.tz ctx.svc key data

let load ctx ~key = load_ctx ctx.tz ctx.svc key

let attestation_body ~measurement ~nonce ~claim =
  Printf.sprintf "tz-attest|%s|%s|%s" (Sha256.hex measurement) nonce claim

let attest ctx ~device_key_name ~nonce ~claim =
  match fuse_read ctx ~name:device_key_name with
  | None -> Error (Printf.sprintf "no fused key %S" device_key_name)
  | Some key ->
    (match ctx.tz.image_hash with
     | None -> Error "no measurement"
     | Some m -> Ok (Hmac.mac ~key (attestation_body ~measurement:m ~nonce ~claim)))

let verify_attestation ~device_key ~expected_measurement ~nonce ~claim tag =
  Hmac.verify ~key:device_key ~tag
    (attestation_body ~measurement:expected_measurement ~nonce ~claim)

let normal_world_read t ~addr ~len =
  Bus.read t.machine.Machine.bus ~requester:(Bus.Cpu { secure = false }) ~addr ~len

let secure_range t = (t.sec_base, t.sec_size)

let breach_service t ~name =
  ignore name;
  (* inside the secure world there is no wall between services *)
  Hashtbl.fold (fun (svc, key) v acc -> (svc, key, v) :: acc) t.kv []
  |> List.sort Stdlib.compare

(* --- Snapshottable ---------------------------------------------------- *)

let take_snapshot t =
  let services = Lt_world.Snapshottable.save_hashtbl t.services in
  let kv = Lt_world.Snapshottable.save_hashtbl t.kv in
  let image_hash = t.image_hash in
  let smcs = t.smcs in
  fun () ->
    services ();
    kv ();
    t.image_hash <- image_hash;
    t.smcs <- smcs

let state_digest t =
  let open Lt_world in
  Digest64.int Digest64.basis t.smcs
  |> Fun.flip (Digest64.option Digest64.string) t.image_hash
  |> Snapshottable.digest_hashtbl ~key:(fun (s, k) -> s ^ "\x00" ^ k) ~value:Fun.id
       t.kv
  |> Snapshottable.digest_hashtbl ~key:Fun.id ~value:(fun _ -> "") t.services
