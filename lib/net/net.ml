type address = string

type packet = { src : address; dst : address; payload : string }

type verdict = Deliver | Drop | Tamper of string

type t = {
  mailboxes : (address, packet Queue.t) Hashtbl.t;
  mutable adversary : packet -> verdict;
  mutable log : packet list; (* newest first *)
  mutable delivered : int;
  mutable dropped : int;
  mutable unroutable : int;
}

let create () =
  { mailboxes = Hashtbl.create 16;
    adversary = (fun _ -> Deliver);
    log = [];
    delivered = 0;
    dropped = 0;
    unroutable = 0 }

let register t addr =
  if Hashtbl.mem t.mailboxes addr then Error `Duplicate_addr
  else begin
    Hashtbl.replace t.mailboxes addr (Queue.create ());
    Ok ()
  end

(* idempotent: tenant/shard churn (destroy + re-place) unregisters the
   old mailbox so the next placement can register cleanly; any queued
   packets die with the mailbox *)
let unregister t addr = Hashtbl.remove t.mailboxes addr

let deliver t packet =
  match Hashtbl.find_opt t.mailboxes packet.dst with
  | None ->
    t.dropped <- t.dropped + 1;
    t.unroutable <- t.unroutable + 1
  | Some q ->
    Queue.add packet q;
    t.delivered <- t.delivered + 1

let send t ~src ~dst payload =
  let packet = { src; dst; payload } in
  t.log <- packet :: t.log;
  match t.adversary packet with
  | Deliver -> deliver t packet
  | Drop -> t.dropped <- t.dropped + 1
  | Tamper payload' -> deliver t { packet with payload = payload' }

let recv t addr =
  match Hashtbl.find_opt t.mailboxes addr with
  | None -> None
  | Some q -> Queue.take_opt q

let pending t addr =
  match Hashtbl.find_opt t.mailboxes addr with
  | None -> 0
  | Some q -> Queue.length q

let set_adversary t f = t.adversary <- f

let clear_adversary t = t.adversary <- (fun _ -> Deliver)

let inject t packet =
  t.log <- packet :: t.log;
  deliver t packet

let observed t = List.rev t.log

let delivered_count t = t.delivered

let dropped_count t = t.dropped

let unroutable_count t = t.unroutable

(* --- Snapshottable ---------------------------------------------------- *)

let take_snapshot t =
  let boxes =
    Hashtbl.fold
      (fun addr q acc -> (addr, q, List.of_seq (Queue.to_seq q)) :: acc)
      t.mailboxes []
  in
  let adversary = t.adversary in
  let log = t.log in
  let delivered = t.delivered and dropped = t.dropped in
  let unroutable = t.unroutable in
  fun () ->
    List.iter
      (fun (_, q, xs) ->
        Queue.clear q;
        List.iter (fun x -> Queue.add x q) xs)
      boxes;
    t.adversary <- adversary;
    t.log <- log;
    t.delivered <- delivered;
    t.dropped <- dropped;
    t.unroutable <- unroutable

let state_digest t =
  let open Lt_world in
  let pkt d p = Digest64.string (Digest64.string (Digest64.string d p.src) p.dst) p.payload in
  Digest64.int
    (Digest64.int (Digest64.int Digest64.basis t.delivered) t.dropped)
    t.unroutable
  |> Fun.flip (Digest64.list pkt) t.log
  |> fun d ->
  List.fold_left
    (fun d (addr, q) ->
      Digest64.list pkt (Digest64.string d addr) (List.of_seq (Queue.to_seq q)))
    d
    (Snapshottable.sorted_bindings t.mailboxes)
