(** Network gateway component (§III-C).

    "Network access of the Android subsystem can be filtered by an
    isolated gateway component. If this gateway has exclusive access to
    the network hardware, it can reliably enforce domain whitelists and
    bandwidth policies to prevent the smart meter appliance from
    participating in distributed denial-of-service attacks."

    The gateway enforces a destination whitelist and a token-bucket
    bandwidth policy; it is the only component holding the NIC, so
    nothing can route around it. *)

type t

type decision =
  | Forwarded
  | Blocked_destination  (** not on the whitelist *)
  | Rate_limited         (** token bucket empty *)

type stats = {
  forwarded : int;
  blocked_destination : int;
  rate_limited : int;
}

(** [create ~whitelist ~tokens_per_tick ~burst] — the bucket refills at
    [tokens_per_tick] (fractional rates accrue exactly across ticks)
    and holds at most [burst] tokens; each forwarded packet costs one
    token. Raises [Invalid_argument] when either rate is NaN or
    negative — a NaN bucket would forward every packet forever. *)
val create : whitelist:Net.address list -> tokens_per_tick:float -> burst:float -> t

(** [submit t net ~now ~src ~dst payload] applies policy and forwards
    via [net] when allowed. [now] is the submitting component's clock
    and is treated as hostile: a clock that runs backwards (or
    oscillates) never refills the bucket — refills happen only when
    [now] exceeds the largest value seen so far. Each decision is
    recorded as a trace event and a [gateway/<decision>] metric when a
    tracer/registry is installed ({!Lt_obs}). *)
val submit :
  t -> Net.t -> now:int -> src:Net.address -> dst:Net.address -> string -> decision

val stats : t -> stats

(** [tokens t] — current bucket level, for tests and diagnostics.
    Invariant: [0 <= tokens t <= burst]. *)
val tokens : t -> float

(** Capture the token bucket and its stats. *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
