(** Simulated message network with a Dolev-Yao adversary.

    "Communication busses within a system must be considered untrusted
    networks as well, the difference merely is the length of the wires"
    (§II-D). Every packet passes through an adversary hook that can
    read, drop, tamper with or delay it, and the adversary can inject
    forged or replayed packets at will. Endpoints are named mailboxes;
    delivery is synchronous into the destination queue. *)

type t

type address = string

type packet = { src : address; dst : address; payload : string }

(** What the adversary does with an in-flight packet. *)
type verdict =
  | Deliver            (** pass unchanged *)
  | Drop
  | Tamper of string   (** replace the payload *)

val create : unit -> t

(** [register t addr] creates a mailbox; [Error `Duplicate_addr] if one
    already exists under that name (typed so churn-tolerant callers can
    decide — nothing raises). *)
val register : t -> address -> (unit, [ `Duplicate_addr ]) result

(** [unregister t addr] removes the mailbox and anything queued in it.
    Idempotent; the address may be {!register}ed again afterwards —
    the destroy half of place → destroy → re-place churn. *)
val unregister : t -> address -> unit

(** [send t ~src ~dst payload] — the adversary sees it first. Sending to
    an unregistered address drops the packet (like the real Internet)
    and counts it in both {!dropped_count} and {!unroutable_count}, so
    partition audits can tell routing loss from adversary loss. *)
val send : t -> src:address -> dst:address -> string -> unit

(** [recv t addr] pops the oldest pending packet for [addr]. *)
val recv : t -> address -> packet option

(** [pending t addr] — queue length without popping. *)
val pending : t -> address -> int

(** {2 The adversary's interface} *)

(** [set_adversary t f] installs the on-path attacker. Default: deliver
    everything (but still record it — passive eavesdropping is always
    possible on an untrusted network). *)
val set_adversary : t -> (packet -> verdict) -> unit

val clear_adversary : t -> unit

(** [inject t packet] puts a forged or replayed packet straight into the
    destination mailbox, bypassing the adversary hook. *)
val inject : t -> packet -> unit

(** [observed t] is every packet the network has carried (the
    eavesdropper's transcript), oldest first. *)
val observed : t -> packet list

(** [delivered_count t] / [dropped_count t] — traffic statistics. *)
val delivered_count : t -> int

val dropped_count : t -> int

(** [unroutable_count t] — packets that reached delivery with no mailbox
    registered for their destination (a strict subset of
    {!dropped_count}; adversary [Drop] verdicts are not unroutable). *)
val unroutable_count : t -> int

(** Capture mailboxes, the adversary, the log and delivery counters. *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
