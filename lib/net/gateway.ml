type decision = Forwarded | Blocked_destination | Rate_limited

type stats = {
  forwarded : int;
  blocked_destination : int;
  rate_limited : int;
}

type t = {
  whitelist : Net.address list;
  tokens_per_tick : float;
  burst : float;
  mutable tokens : float;
  mutable last_refill : int;
  mutable st : stats;
}

let create ~whitelist ~tokens_per_tick ~burst =
  (* a NaN rate or burst would poison the bucket arithmetic: NaN never
     compares below 1.0, so every packet would be forwarded forever *)
  if Float.is_nan tokens_per_tick || tokens_per_tick < 0.0 then
    invalid_arg "Gateway.create: tokens_per_tick must be a non-negative number";
  if Float.is_nan burst || burst < 0.0 then
    invalid_arg "Gateway.create: burst must be a non-negative number";
  { whitelist;
    tokens_per_tick;
    burst;
    tokens = burst;
    last_refill = 0;
    st = { forwarded = 0; blocked_destination = 0; rate_limited = 0 } }

(* [now] comes from the submitting component's clock, which a
   compromised caller controls: a clock that jumps backwards (or
   oscillates) must never mint tokens, so the refill reference point
   only ever moves forward and the bucket is clamped to [burst] *)
let refill t ~now =
  if now > t.last_refill then begin
    let dt = float_of_int (now - t.last_refill) in
    t.tokens <- Float.min t.burst (t.tokens +. (dt *. t.tokens_per_tick));
    t.last_refill <- now
  end

let decision_name = function
  | Forwarded -> "forwarded"
  | Blocked_destination -> "blocked-destination"
  | Rate_limited -> "rate-limited"

let submit t net ~now ~src ~dst payload =
  refill t ~now;
  let decision =
    if not (List.mem dst t.whitelist) then begin
      t.st <- { t.st with blocked_destination = t.st.blocked_destination + 1 };
      Blocked_destination
    end
    else if t.tokens < 1.0 then begin
      t.st <- { t.st with rate_limited = t.st.rate_limited + 1 };
      Rate_limited
    end
    else begin
      t.tokens <- t.tokens -. 1.0;
      Net.send net ~src ~dst payload;
      t.st <- { t.st with forwarded = t.st.forwarded + 1 };
      Forwarded
    end
  in
  Lt_obs.Trace.event ~kind:"gateway" ~name:dst
    ~attrs:[ ("decision", decision_name decision); ("src", src) ]
    ();
  Lt_obs.Metrics.incr_grouped ~group:"gateway" (decision_name decision);
  decision

let stats t = t.st

let tokens t = t.tokens

(* --- Snapshottable ---------------------------------------------------- *)

let take_snapshot t =
  let tokens = t.tokens in
  let last_refill = t.last_refill in
  let st = t.st in
  fun () ->
    t.tokens <- tokens;
    t.last_refill <- last_refill;
    t.st <- st

let state_digest t =
  let open Lt_world.Digest64 in
  int64 (int basis t.last_refill) (Int64.bits_of_float t.tokens)
