(** Sharded multi-tenant scale-out (ROADMAP item 2).

    One booted scenario deployment per {e shard} serves as a template;
    every tenant instance is a {!Lt_world.World.fork} of that template
    (O(dirty) copy-on-write, ~19 µs — see BENCH_snap.json), and the
    router time-multiplexes tenants over their shard by [restore] →
    batch of requests → [fork]. Nothing is redeployed per tenant, so
    tenant count scales to the tens of thousands.

    {b Trust domains.} Tenant [i] on shard [k] lives in the nestable
    trust domain [shard-k/tenant-i] (manifest [domain] stanzas,
    Tyche-style). {!fleet_manifests} materialises the whole fleet as
    per-tenant manifest sets carrying those paths, so
    {!Lateral.Lint}/{!Lateral.Flow}/{!Lateral.Contain} per-domain
    verdicts and {!Lateral.Check.domain_slice} apply directly: one
    tenant's taint or blast radius can never be attributed to another.

    {b Admission.} Each shard fronts its tenants with a
    {!Lt_net.Gateway} token bucket; requests that find the bucket empty
    are throttled at the door (counted per tenant, never issued).

    {b Determinism.} The request mix of tenant [i] derives from
    {!Lt_crypto.Drbg.substream}[ master i] — a pure function of
    [(seed, i)] — so equal seeds give byte-identical reports, and a run
    over 100 tenants and a run over 1000 give byte-identical per-tenant
    traffic digests for the 100 shared tenants.

    {b Chaos.} [sc_kill_shards] kills whole shards at the start of
    round [sc_kill_after]: every subsequent request routed to a dead
    shard is refused with a typed per-tenant fault line. The report
    audits the observed blast radius: a failure attributed to a tenant
    outside a killed shard's domain set is a containment violation
    ({!contained} is false). *)

type config = {
  sc_scenario : Lt_load.Load.scenario;
  sc_tenants : int;
  sc_shards : int;
  sc_requests_per_tenant : int;
  sc_batch : int;       (** requests issued per tenant visit *)
  sc_seed : int;
  sc_admit_rate : float;   (** gateway tokens per tick, per shard *)
  sc_admit_burst : float;  (** gateway burst, per shard *)
  sc_kill_shards : int list;
  sc_kill_after : int;  (** round at whose start the kills fire; 0 = never *)
}

val default : config

(** [shard_of_tenant ~shards i] — tenants are sharded round-robin:
    [i mod shards]. *)
val shard_of_tenant : shards:int -> int -> int

(** [domain_of_tenant ~shards i] — the tenant's nested trust-domain
    path, [["shard-k"; "tenant-i"]]. *)
val domain_of_tenant : shards:int -> int -> string list

type tenant_report = {
  tr_tenant : int;
  tr_shard : int;
  tr_domain : string list;
  tr_ok : int;
  tr_degraded : int;   (** answered, but rate-limited inside the scenario *)
  tr_errors : int;     (** typed call errors *)
  tr_throttled : int;  (** refused by the shard gateway's token bucket *)
  tr_refused : int;    (** refused because the tenant's shard was killed *)
  tr_traffic : string;
      (** hex digest of the tenant's generated request stream — the
          pool-size-independence witness *)
}

type report = {
  s_scenario : string;
  s_tenants : int;
  s_shards : int;
  s_requests_per_tenant : int;
  s_requests : int;  (** total issued or refused across all tenants *)
  s_seed : int;
  s_ok : int;
  s_degraded : int;
  s_errors : int;
  s_throttled : int;
  s_refused : int;
  s_killed_shards : int list;
  s_cross_domain_failures : (int * string) list;
      (** (tenant, detail) for every failure attributed to a tenant
          {e outside} the killed shards' domain set — must be [[]] *)
  s_forks : int;     (** world forks performed (tenant instances + visits) *)
  s_restores : int;  (** world restores performed *)
  s_counters : (string * int) list;
  s_tenant_reports : tenant_report list;  (** ordered by tenant id *)
}

(** Observed blast radius ⊆ the killed shards' domain set. *)
val contained : report -> bool

(** [run config] — boots one template deployment per shard, then drives
    the closed-loop seeded mix across all tenants in shard-major
    batches. Errors on invalid config or a failed template boot; shard
    kills and per-tenant faults are reported, never raised. *)
val run : config -> (report, string) result

(** [fleet_manifests config] — the whole fleet as static manifests: the
    scenario's components cloned per tenant, names and protection
    domains prefixed [t<i>.], each carrying its tenant's trust-domain
    path. Feed to {!Lateral.Lint.run}, {!Lateral.Flow.analyze},
    {!Lateral.Contain.analyze} and the per-domain verdict renderers. *)
val fleet_manifests : config -> (Lateral.Manifest.t list, string) result

val render_report_text : report -> string

val render_report_json : report -> string
