open Lateral
module World = Lt_world.World
module Digest64 = Lt_world.Digest64
module Drbg = Lt_crypto.Drbg
module Trace = Lt_obs.Trace
module Metrics = Lt_obs.Metrics
module Load = Lt_load.Load
module Net = Lt_net.Net
module Gateway = Lt_net.Gateway

type config = {
  sc_scenario : Load.scenario;
  sc_tenants : int;
  sc_shards : int;
  sc_requests_per_tenant : int;
  sc_batch : int;
  sc_seed : int;
  sc_admit_rate : float;
  sc_admit_burst : float;
  sc_kill_shards : int list;
  sc_kill_after : int;
}

let default =
  { sc_scenario = Load.Mail;
    sc_tenants = 100;
    sc_shards = 4;
    sc_requests_per_tenant = 8;
    sc_batch = 4;
    sc_seed = 1;
    sc_admit_rate = 1.0;
    sc_admit_burst = 32.0;
    sc_kill_shards = [];
    sc_kill_after = 0 }

let shard_of_tenant ~shards i = i mod shards

let domain_of_tenant ~shards i =
  [ Printf.sprintf "shard-%d" (shard_of_tenant ~shards i);
    Printf.sprintf "tenant-%d" i ]

type tenant_report = {
  tr_tenant : int;
  tr_shard : int;
  tr_domain : string list;
  tr_ok : int;
  tr_degraded : int;
  tr_errors : int;
  tr_throttled : int;
  tr_refused : int;
  tr_traffic : string;
}

type report = {
  s_scenario : string;
  s_tenants : int;
  s_shards : int;
  s_requests_per_tenant : int;
  s_requests : int;
  s_seed : int;
  s_ok : int;
  s_degraded : int;
  s_errors : int;
  s_throttled : int;
  s_refused : int;
  s_killed_shards : int list;
  s_cross_domain_failures : (int * string) list;
  s_forks : int;
  s_restores : int;
  s_counters : (string * int) list;
  s_tenant_reports : tenant_report list;
}

let contained r = r.s_cross_domain_failures = []

let validate cfg =
  if cfg.sc_tenants <= 0 then Error "tenants must be positive"
  else if cfg.sc_shards <= 0 then Error "shards must be positive"
  else if cfg.sc_shards > cfg.sc_tenants then
    Error "shards must not exceed tenants"
  else if cfg.sc_requests_per_tenant < 0 then
    Error "requests per tenant must be non-negative"
  else if cfg.sc_batch <= 0 then Error "batch must be positive"
  else if cfg.sc_admit_rate < 0.0 || cfg.sc_admit_rate <> cfg.sc_admit_rate
  then Error "admit rate must be non-negative"
  else if cfg.sc_admit_burst < 1.0 || cfg.sc_admit_burst <> cfg.sc_admit_burst
  then Error "admit burst must be at least 1"
  else if cfg.sc_kill_after < 0 then Error "kill round must be non-negative"
  else
    match
      List.find_opt
        (fun k -> k < 0 || k >= cfg.sc_shards)
        cfg.sc_kill_shards
    with
    | Some k -> Error (Printf.sprintf "kill shard %d out of range" k)
    | None -> Ok ()

(* --- per-shard state ---------------------------------------------------------- *)

type shard = {
  sh_id : int;
  sh_dep : Load.deployed;
  sh_template : World.snap;  (* the pristine booted deployment *)
  sh_gate : Gateway.t;
  sh_net : Net.t;            (* admission net fronting the shard *)
  sh_entry : string;
  mutable sh_tick : int;     (* gateway clock: one tick per admission *)
  mutable sh_alive : bool;
}

let boot_shard rng cfg k =
  match Load.deploy_scenario (Drbg.substream rng k) cfg.sc_scenario with
  | Error e -> Error (Printf.sprintf "shard %d: %s" k e)
  | Ok dep ->
    let net = Net.create () in
    let entry = Printf.sprintf "shard-%d" k in
    (match Net.register net entry with
     | Ok () -> ()
     | Error `Duplicate_addr -> () (* fresh net: unreachable *));
    let gate =
      Gateway.create ~whitelist:[ entry ]
        ~tokens_per_tick:cfg.sc_admit_rate ~burst:cfg.sc_admit_burst
    in
    Ok
      { sh_id = k;
        sh_dep = dep;
        sh_template = World.fork dep.Load.d_world;
        sh_gate = gate;
        sh_net = net;
        sh_entry = entry;
        sh_tick = 0;
        sh_alive = true }

let rec boot_shards rng cfg k =
  if k >= cfg.sc_shards then Ok []
  else
    match boot_shard rng cfg k with
    | Error _ as e -> e
    | Ok sh ->
      (match boot_shards rng cfg (k + 1) with
       | Error _ as e -> e
       | Ok rest -> Ok (sh :: rest))

(* --- per-tenant state --------------------------------------------------------- *)

type tenant = {
  tn_id : int;
  tn_shard : int;
  tn_rng : Drbg.t;          (* substream master i — pool-size independent *)
  mutable tn_snap : World.snap;
  mutable tn_issued : int;  (* requests drawn from the mix so far *)
  mutable tn_digest : Digest64.t;
  mutable tn_ok : int;
  mutable tn_degraded : int;
  mutable tn_errors : int;
  mutable tn_throttled : int;
  mutable tn_refused : int;
}

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* --- the run loop ------------------------------------------------------------- *)

let run cfg =
  match validate cfg with
  | Error _ as e -> e
  | Ok () ->
    let master = Drbg.create (Int64.of_int cfg.sc_seed) in
    let deploy_rng = Drbg.split master in
    (match boot_shards deploy_rng cfg 0 with
     | Error _ as e -> e
     | Ok shards ->
       let shard = Array.of_list shards in
       let forks = ref (Array.length shard) and restores = ref 0 in
       let tenants =
         Array.init cfg.sc_tenants (fun i ->
             let k = shard_of_tenant ~shards:cfg.sc_shards i in
             { tn_id = i;
               tn_shard = k;
               tn_rng = Drbg.substream master i;
               tn_snap = shard.(k).sh_template;
               tn_issued = 0;
               tn_digest = Digest64.basis;
               tn_ok = 0;
               tn_degraded = 0;
               tn_errors = 0;
               tn_throttled = 0;
               tn_refused = 0 })
       in
       let metrics = Metrics.create () in
       let killed = ref [] in
       let kill_shards () =
         List.iter
           (fun k ->
             if shard.(k).sh_alive then begin
               shard.(k).sh_alive <- false;
               killed := k :: !killed;
               Metrics.incr "scale/shard_kills";
               Trace.event ~kind:"chaos"
                 ~name:(Printf.sprintf "kill-shard-%d" k) ()
             end)
           cfg.sc_kill_shards
       in
       let visit tn n =
         let sh = shard.(tn.tn_shard) in
         let tid = Printf.sprintf "tenant-%d" tn.tn_id in
         if sh.sh_alive then begin
           (* enter the tenant's instance: rewind the shard's world to
              this tenant's fork of the template *)
           World.restore sh.sh_dep.Load.d_world tn.tn_snap;
           incr restores
         end;
         for _ = 1 to n do
           tn.tn_issued <- tn.tn_issued + 1;
           let target, service, payload =
             sh.sh_dep.Load.d_mix tn.tn_rng tn.tn_issued
           in
           (* the traffic digest covers every generated request, before
              admission or chaos can interfere — it is a pure function
              of (seed, tenant id, request index) *)
           tn.tn_digest <-
             Digest64.(
               string (string (string tn.tn_digest target) service) payload);
           if not sh.sh_alive then begin
             tn.tn_refused <- tn.tn_refused + 1;
             Metrics.incr "scale/refused";
             Trace.event ~kind:"refused" ~name:tid ()
           end
           else begin
             sh.sh_tick <- sh.sh_tick + 1;
             match
               Gateway.submit sh.sh_gate sh.sh_net ~now:sh.sh_tick ~src:tid
                 ~dst:sh.sh_entry payload
             with
             | Gateway.Rate_limited | Gateway.Blocked_destination ->
               tn.tn_throttled <- tn.tn_throttled + 1;
               Metrics.incr "scale/throttled"
             | Gateway.Forwarded ->
               ignore (Net.recv sh.sh_net sh.sh_entry);
               Metrics.incr "scale/admitted";
               Metrics.incr_grouped ~group:"shard" sh.sh_entry;
               let r =
                 Trace.with_span ~kind:"request"
                   ~name:(target ^ "." ^ service)
                   ~attrs:
                     [ ("tenant", tid); ("shard", sh.sh_entry);
                       ("request", string_of_int tn.tn_issued) ]
                   (fun () ->
                     match
                       Deploy.call sh.sh_dep.Load.d_deploy ~caller:None
                         ~target ~service payload
                     with
                     | Ok r -> Ok r
                     | Error e ->
                       Trace.fail_span e;
                       Error e)
               in
               (match r with
                | Ok reply when has_prefix ~prefix:"rate-limited" reply ->
                  tn.tn_degraded <- tn.tn_degraded + 1;
                  Metrics.incr "scale/degraded"
                | Ok _ ->
                  tn.tn_ok <- tn.tn_ok + 1;
                  Metrics.incr "scale/ok"
                | Error _ ->
                  tn.tn_errors <- tn.tn_errors + 1;
                  Metrics.incr "scale/errors")
           end
         done;
         if sh.sh_alive then begin
           (* leave: capture the tenant's state so the next visit (or
              another tenant's) cannot observe it *)
           tn.tn_snap <- World.fork sh.sh_dep.Load.d_world;
           incr forks
         end
       in
       let tracer = Trace.create () in
       Metrics.with_metrics metrics (fun () ->
           Trace.with_tracer tracer (fun () ->
               let rounds =
                 if cfg.sc_requests_per_tenant = 0 then 0
                 else
                   (cfg.sc_requests_per_tenant + cfg.sc_batch - 1)
                   / cfg.sc_batch
               in
               for round = 1 to rounds do
                 if cfg.sc_kill_after > 0 && round = cfg.sc_kill_after then
                   kill_shards ();
                 (* shard-major: all of a shard's tenants run as one
                    batch train before the router moves on *)
                 Array.iter
                   (fun sh ->
                     Array.iter
                       (fun tn ->
                         if tn.tn_shard = sh.sh_id then begin
                           let remaining =
                             cfg.sc_requests_per_tenant - tn.tn_issued
                           in
                           let n = min cfg.sc_batch remaining in
                           if n > 0 then visit tn n
                         end)
                       tenants)
                   shard
               done;
               if cfg.sc_kill_after > 0 && rounds < cfg.sc_kill_after then
                 kill_shards ()));
       let killed = List.sort compare !killed in
       let tenant_reports =
         Array.to_list
           (Array.map
              (fun tn ->
                { tr_tenant = tn.tn_id;
                  tr_shard = tn.tn_shard;
                  tr_domain = domain_of_tenant ~shards:cfg.sc_shards tn.tn_id;
                  tr_ok = tn.tn_ok;
                  tr_degraded = tn.tn_degraded;
                  tr_errors = tn.tn_errors;
                  tr_throttled = tn.tn_throttled;
                  tr_refused = tn.tn_refused;
                  tr_traffic = Digest64.to_hex tn.tn_digest })
              tenants)
       in
       (* the audit: every failure must be attributable to the failing
          tenant's own trust domain — and a domain only fails when its
          shard was killed *)
       let cross =
         List.filter_map
           (fun tr ->
             let failures = tr.tr_errors + tr.tr_refused in
             if failures > 0 && not (List.mem tr.tr_shard killed) then
               Some
                 ( tr.tr_tenant,
                   Printf.sprintf
                     "%d failure(s) in live domain %s (errors %d, refused %d)"
                     failures
                     (Manifest.trust_path_string tr.tr_domain)
                     tr.tr_errors tr.tr_refused )
             else None)
           tenant_reports
       in
       let sum f = List.fold_left (fun a tr -> a + f tr) 0 tenant_reports in
       Array.iter (fun sh -> Deploy.destroy sh.sh_dep.Load.d_deploy) shard;
       Ok
         { s_scenario = Load.scenario_name cfg.sc_scenario;
           s_tenants = cfg.sc_tenants;
           s_shards = cfg.sc_shards;
           s_requests_per_tenant = cfg.sc_requests_per_tenant;
           s_requests = cfg.sc_tenants * cfg.sc_requests_per_tenant;
           s_seed = cfg.sc_seed;
           s_ok = sum (fun t -> t.tr_ok);
           s_degraded = sum (fun t -> t.tr_degraded);
           s_errors = sum (fun t -> t.tr_errors);
           s_throttled = sum (fun t -> t.tr_throttled);
           s_refused = sum (fun t -> t.tr_refused);
           s_killed_shards = killed;
           s_cross_domain_failures = cross;
           s_forks = !forks;
           s_restores = !restores;
           s_counters = Metrics.counters metrics;
           s_tenant_reports = tenant_reports })

(* --- the static fleet --------------------------------------------------------- *)

let clone_for_tenant ~shards i (m : Manifest.t) =
  let pre n = Printf.sprintf "t%d.%s" i n in
  { m with
    Manifest.name = pre m.Manifest.name;
    domain = pre m.Manifest.domain;
    trust_domain = domain_of_tenant ~shards i;
    connects_to =
      List.map
        (fun c -> { c with Manifest.target = pre c.Manifest.target })
        m.Manifest.connects_to }

let fleet_manifests cfg =
  match validate cfg with
  | Error _ as e -> e
  | Ok () ->
    let rng = Drbg.create (Int64.of_int cfg.sc_seed) in
    (match Load.deploy_scenario (Drbg.split rng) cfg.sc_scenario with
     | Error e -> Error e
     | Ok dep ->
       let template =
         List.filter_map
           (Deploy.manifest dep.Load.d_deploy)
           (Deploy.components dep.Load.d_deploy)
       in
       Deploy.destroy dep.Load.d_deploy;
       Ok
         (List.concat_map
            (fun i ->
              List.map
                (clone_for_tenant ~shards:cfg.sc_shards i)
                template)
            (List.init cfg.sc_tenants (fun i -> i))))

(* --- rendering ---------------------------------------------------------------- *)

let render_report_text r =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "lateral scale %s: %d tenants over %d shards, %d req/tenant, seed %d\n"
    r.s_scenario r.s_tenants r.s_shards r.s_requests_per_tenant r.s_seed;
  add "  ok %d, degraded %d, errors %d, throttled %d, refused %d (of %d)\n"
    r.s_ok r.s_degraded r.s_errors r.s_throttled r.s_refused r.s_requests;
  add "  worlds: %d forks, %d restores\n" r.s_forks r.s_restores;
  add "  killed shards: %s\n"
    (if r.s_killed_shards = [] then "-"
     else String.concat ", " (List.map string_of_int r.s_killed_shards));
  (match r.s_cross_domain_failures with
   | [] -> add "  blast radius: contained to the killed shards' domain set\n"
   | l ->
     List.iter
       (fun (t, d) -> add "  CROSS-DOMAIN FAILURE: tenant %d: %s\n" t d)
       l);
  add "counters:\n";
  List.iter (fun (k, v) -> add "  %-32s %8d\n" k v) r.s_counters;
  let shown = min 10 (List.length r.s_tenant_reports) in
  add "tenants (first %d of %d):\n" shown r.s_tenants;
  List.iteri
    (fun i tr ->
      if i < shown then
        add "  %-12s shard %d ok %d degraded %d errors %d throttled %d refused %d traffic %s\n"
          (Printf.sprintf "tenant-%d" tr.tr_tenant)
          tr.tr_shard tr.tr_ok tr.tr_degraded tr.tr_errors tr.tr_throttled
          tr.tr_refused tr.tr_traffic)
    r.s_tenant_reports;
  Buffer.contents buf

let render_report_json r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\"scenario\":%S,\"tenants\":%d,\"shards\":%d" r.s_scenario r.s_tenants
    r.s_shards;
  add ",\"requests_per_tenant\":%d,\"requests\":%d,\"seed\":%d"
    r.s_requests_per_tenant r.s_requests r.s_seed;
  add ",\"ok\":%d,\"degraded\":%d,\"errors\":%d,\"throttled\":%d,\"refused\":%d"
    r.s_ok r.s_degraded r.s_errors r.s_throttled r.s_refused;
  add ",\"killed_shards\":[%s]"
    (String.concat "," (List.map string_of_int r.s_killed_shards));
  add ",\"cross_domain_failures\":[%s]"
    (String.concat ","
       (List.map
          (fun (t, d) -> Printf.sprintf "{\"tenant\":%d,\"detail\":%S}" t d)
          r.s_cross_domain_failures));
  add ",\"contained\":%b" (contained r);
  add ",\"forks\":%d,\"restores\":%d" r.s_forks r.s_restores;
  add ",\"counters\":{%s}"
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "%S:%d" k v) r.s_counters));
  add ",\"tenants_detail\":[%s]"
    (String.concat ","
       (List.map
          (fun tr ->
            Printf.sprintf
              "{\"tenant\":%d,\"shard\":%d,\"domain\":%S,\"ok\":%d,\"degraded\":%d,\"errors\":%d,\"throttled\":%d,\"refused\":%d,\"traffic\":%S}"
              tr.tr_tenant tr.tr_shard
              (Manifest.trust_path_string tr.tr_domain)
              tr.tr_ok tr.tr_degraded tr.tr_errors tr.tr_throttled
              tr.tr_refused tr.tr_traffic)
          r.s_tenant_reports));
  add "}";
  Buffer.contents buf
