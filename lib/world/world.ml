(* A world is an ordered bag of Snapshottable layers; a fork is the
   list of their restore thunks.  Forking never copies the big arrays
   (those go through Cow) so cloning a fully booted deployment is
   microseconds. *)

type t = { mutable layers : Snapshottable.layer list (* reversed *) }

type snap = (unit -> unit) list

let create () = { layers = [] }

let add t layer = t.layers <- layer :: t.layers

let add_all t layers = List.iter (add t) layers

let layers t = List.rev t.layers

let fork t = List.rev_map (fun l -> l.Snapshottable.l_take ()) t.layers

let snapshot = fork

let restore _t snap = List.iter (fun thunk -> thunk ()) snap

let enter = restore

(* snapshots are plain closures: discarding is just dropping the
   reference, kept as an explicit API for symmetry and future pooling *)
let discard _t _snap = ()

let digest t =
  List.fold_left
    (fun d l ->
      Digest64.combine
        (Digest64.string d l.Snapshottable.l_name)
        (l.Snapshottable.l_digest ()))
    Digest64.basis (layers t)

let layer_digests t =
  List.map
    (fun l -> (l.Snapshottable.l_name, l.Snapshottable.l_digest ()))
    (layers t)
