(** Cheap 64-bit content digests (FNV-1a) for world-state equality.

    Every [Snapshottable] layer exposes a digest so tests can assert
    that snapshot → mutate → restore reproduces a byte-identical world
    without keeping a full copy around.  Accumulator style: start from
    {!basis}, feed data, compare the resulting [int64]. *)

type t = int64

val basis : t
val byte : t -> int -> t
val char : t -> char -> t
val string : t -> string -> t
val bytes : t -> Bytes.t -> t
val int : t -> int -> t
val int64 : t -> int64 -> t
val bool : t -> bool -> t
val option : (t -> 'a -> t) -> t -> 'a option -> t

(** [combine h d] folds a finished digest [d] into accumulator [h]. *)
val combine : t -> t -> t

val list : (t -> 'a -> t) -> t -> 'a list -> t
val to_hex : t -> string
