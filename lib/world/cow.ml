(* Copy-on-write byte store.  The backing store is an array of fixed
   size chunks plus a per-chunk owner generation.  A snapshot is a copy
   of the chunk-pointer array (O(chunks), pointer-sized entries, no
   byte copying) and a generation bump; a write copies its chunk only
   the first time the current generation touches it.  Snapshotting a
   booted world is therefore O(dirty), not O(world), which is what
   makes World.fork microseconds instead of milliseconds. *)

let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits (* 4 KiB, one simulated page *)

type t = {
  length : int;
  chunks : Bytes.t array;
  owner : int array; (* generation that owns (may mutate) chunk i *)
  mutable gen : int;
}

type snap = Bytes.t array

let chunk_count len = (len + chunk_size - 1) / chunk_size

let create ~len =
  if len < 0 then invalid_arg "Cow.create: negative length";
  let n = chunk_count len in
  let chunks =
    Array.init n (fun i ->
        Bytes.make (min chunk_size (len - (i * chunk_size))) '\000')
  in
  { length = len; chunks; owner = Array.make n 0; gen = 0 }

let length t = t.length

let of_bytes b =
  let t = create ~len:(Bytes.length b) in
  Array.iteri
    (fun i c -> Bytes.blit b (i * chunk_size) c 0 (Bytes.length c))
    t.chunks;
  t

(* make chunk [i] private to the current generation before mutating it *)
let ensure_owned t i =
  if t.owner.(i) <> t.gen then begin
    t.chunks.(i) <- Bytes.copy t.chunks.(i);
    t.owner.(i) <- t.gen
  end

let check_range t pos len name =
  if pos < 0 || len < 0 || pos + len > t.length then invalid_arg name

let get t pos =
  check_range t pos 1 "Cow.get";
  Bytes.get t.chunks.(pos lsr chunk_bits) (pos land (chunk_size - 1))

let set t pos c =
  check_range t pos 1 "Cow.set";
  let i = pos lsr chunk_bits in
  ensure_owned t i;
  Bytes.set t.chunks.(i) (pos land (chunk_size - 1)) c

(* iterate [f chunk_index off_in_chunk len_in_chunk pos_in_op] over the
   chunks a [pos, len) range spans *)
let iter_chunks t ~pos ~len f =
  let p = ref pos and done_ = ref 0 in
  while !done_ < len do
    let i = !p lsr chunk_bits in
    let off = !p land (chunk_size - 1) in
    let n = min (Bytes.length t.chunks.(i) - off) (len - !done_) in
    f i off n !done_;
    p := !p + n;
    done_ := !done_ + n
  done

let sub_string t ~pos ~len =
  check_range t pos len "Cow.sub_string";
  let out = Bytes.create len in
  iter_chunks t ~pos ~len (fun i off n at ->
      Bytes.blit t.chunks.(i) off out at n);
  Bytes.unsafe_to_string out

let blit_string src t ~pos =
  let len = String.length src in
  check_range t pos len "Cow.blit_string";
  iter_chunks t ~pos ~len (fun i off n at ->
      ensure_owned t i;
      Bytes.blit_string src at t.chunks.(i) off n)

let fill t ~pos ~len c =
  check_range t pos len "Cow.fill";
  iter_chunks t ~pos ~len (fun i off n _ ->
      ensure_owned t i;
      Bytes.fill t.chunks.(i) off n c)

let snapshot t =
  let s = Array.copy t.chunks in
  (* both the live store and the snap now share every chunk: neither
     owns them, so the next write from either side copies first *)
  t.gen <- t.gen + 1;
  s

let restore t s =
  if Array.length s <> Array.length t.chunks then
    invalid_arg "Cow.restore: snapshot from a different store";
  Array.blit s 0 t.chunks 0 (Array.length s);
  (* the snap stays valid for re-restore: chunks are shared again *)
  t.gen <- t.gen + 1

let digest t =
  Array.fold_left Digest64.bytes (Digest64.int Digest64.basis t.length) t.chunks
