(* FNV-1a, 64-bit.  Not cryptographic -- a cheap content digest used to
   compare two world states for byte-identity in tests and goldens.
   Collisions are astronomically unlikely for the state sizes involved
   and a false "equal" only weakens a test, never the runtime. *)

type t = int64

let basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let char h c = byte h (Char.code c)

let string h s =
  let h = ref h in
  String.iter (fun c -> h := char !h c) s;
  !h

let bytes h b =
  let h = ref h in
  Bytes.iter (fun c -> h := char !h c) b;
  !h

let int64 h x =
  let h = ref h in
  for i = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical x (i * 8)))
  done;
  !h

let int h n = int64 h (Int64.of_int n)

let bool h b = byte h (if b then 1 else 0)

let option f h = function None -> byte h 0 | Some v -> f (byte h 1) v

(* combining two digests is just feeding one into the other *)
let combine h d = int64 h d

let list f h xs = List.fold_left f (int h (List.length xs)) xs

let to_hex d = Printf.sprintf "%016Lx" d
