(** The [Snapshottable] contract every stateful layer implements.

    [l_take ()] captures the layer's state and returns a restore thunk
    that puts it back exactly; thunks may run any number of times
    (snapshots are re-restorable).  [l_digest ()] is a content digest
    for equality checks — it may walk the whole layer, so it belongs in
    tests and goldens, never on the fork fast path.

    Restore thunks must restore state {e in place} (same records, same
    tables) so closures that captured those records keep working after
    a restore.  See docs/SNAPSHOTS.md for the full contract. *)

type layer = {
  l_name : string;
  l_take : unit -> unit -> unit;
  l_digest : unit -> Digest64.t;
}

val make :
  name:string -> take:(unit -> unit -> unit) -> digest:(unit -> Digest64.t) ->
  layer

val name : layer -> string
val take : layer -> unit -> unit
val digest : layer -> Digest64.t

(** {2 Capture helpers} *)

val save_ref : 'a ref -> unit -> unit

(** [save_refs takes] runs each capture now, returns one combined
    restore thunk. *)
val save_refs : (unit -> unit -> unit) list -> unit -> unit

(** Captures the bindings; restore resets the table and re-adds them.
    Values are captured by reference — mutable values need their own
    capture on top. *)
val save_hashtbl : ('k, 'v) Hashtbl.t -> unit -> unit

(** Registry of name → inner table: restores the outer bindings {e and}
    each inner table's contents. *)
val save_hashtbl_registry : ('k, ('a, 'b) Hashtbl.t) Hashtbl.t -> unit -> unit

val save_queue : 'a Queue.t -> unit -> unit
val save_array : 'a array -> unit -> unit
val save_bytes : Bytes.t -> unit -> unit

(** {2 Digest helpers} *)

(** A table's bindings in key-sorted order. *)
val sorted_bindings : ('k, 'v) Hashtbl.t -> ('k * 'v) list

(** Digest a table's bindings in key-sorted order (iteration order is
    insertion-history dependent, digests must not be). *)
val digest_hashtbl :
  key:('k -> string) -> value:('v -> string) -> ('k, 'v) Hashtbl.t ->
  Digest64.t -> Digest64.t
