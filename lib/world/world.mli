(** A world: the ordered collection of {!Snapshottable} layers making
    up one booted deployment (hardware, kernel, substrate sims, storage
    images, the deploy control plane, scenario harness state).

    [fork] captures all layers in O(dirty) — big arrays are shared
    copy-on-write via {!Cow} — and [restore] puts every layer back
    byte-identically.  A snap can be restored any number of times, so
    one pristine fork serves an entire fuzz run or chaos schedule. *)

type t
type snap

val create : unit -> t
val add : t -> Snapshottable.layer -> unit
val add_all : t -> Snapshottable.layer list -> unit
val layers : t -> Snapshottable.layer list

(** [fork t] captures every layer.  Alias: {!snapshot}. *)
val fork : t -> snap

val snapshot : t -> snap

(** [restore t s] rewinds every layer to the forked state.  Alias:
    {!enter}. *)
val restore : t -> snap -> unit

val enter : t -> snap -> unit

(** Snaps are plain values — discard is dropping the reference; kept
    explicit for symmetry. *)
val discard : t -> snap -> unit

(** Whole-world content digest (walks every layer — test/golden use
    only, not the fork path). *)
val digest : t -> Digest64.t

val layer_digests : t -> (string * Digest64.t) list
