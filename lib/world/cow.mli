(** Copy-on-write byte store for the big flat arrays of the simulated
    world: DRAM frames, EPC pages, CHERI compartment memory, FS block
    devices.

    Backed by 4 KiB chunks with per-chunk owner generations.
    {!snapshot} copies only the chunk-pointer array — O(chunks), no
    byte copying — and {!restore} blits it back, so forking a booted
    world costs microseconds and writes pay a one-time chunk copy per
    generation (O(dirty) total). *)

type t
type snap

val chunk_size : int

(** [create ~len] — a zero-filled store of [len] bytes. *)
val create : len:int -> t

val of_bytes : Bytes.t -> t
val length : t -> int
val get : t -> int -> char
val set : t -> int -> char -> unit
val sub_string : t -> pos:int -> len:int -> string
val blit_string : string -> t -> pos:int -> unit
val fill : t -> pos:int -> len:int -> char -> unit

(** [snapshot t] shares all chunks between [t] and the snap; the next
    write on either side copies the touched chunk first.  A snap can be
    restored any number of times. *)
val snapshot : t -> snap

(** [restore t s] — [s] must come from [t] (same geometry). *)
val restore : t -> snap -> unit

val digest : t -> Digest64.t
