(* The Snapshottable contract, in restore-thunk form.

   A layer's [l_take] captures whatever the layer needs and returns a
   thunk that puts the layer back exactly as it was; running the thunk
   more than once is legal (snapshots are re-restorable).  The thunk
   form lets heterogeneous layers (a Hashtbl here, a Cow store there, a
   bundle of refs in a closure) aggregate into one World without a
   shared snap type. *)

type layer = {
  l_name : string;
  l_take : unit -> unit -> unit;
  l_digest : unit -> Digest64.t;
}

let make ~name ~take ~digest = { l_name = name; l_take = take; l_digest = digest }

let name l = l.l_name
let take l = l.l_take ()
let digest l = l.l_digest ()

(* --- capture helpers for layer authors ------------------------------- *)

let save_ref r =
  let v = !r in
  fun () -> r := v

let save_refs takes =
  let rs = List.map (fun take -> take ()) takes in
  fun () -> List.iter (fun restore -> restore ()) rs

let save_hashtbl h =
  let bs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] in
  fun () ->
    Hashtbl.reset h;
    List.iter (fun (k, v) -> Hashtbl.replace h k v) bs

(* registry of name -> inner Hashtbl: restores both the outer bindings
   and each inner table's contents (adapters keep per-launch KV tables
   in such registries) *)
let save_hashtbl_registry reg =
  let outer = Hashtbl.fold (fun k v acc -> (k, v) :: acc) reg [] in
  let inner = List.map (fun (_, tbl) -> save_hashtbl tbl) outer in
  fun () ->
    Hashtbl.reset reg;
    List.iter (fun (k, v) -> Hashtbl.replace reg k v) outer;
    List.iter (fun restore -> restore ()) inner

let save_queue q =
  let xs = List.of_seq (Queue.to_seq q) in
  fun () ->
    Queue.clear q;
    List.iter (fun x -> Queue.add x q) xs

let save_array a =
  let c = Array.copy a in
  fun () -> Array.blit c 0 a 0 (Array.length a)

let save_bytes b =
  let c = Bytes.copy b in
  fun () -> Bytes.blit c 0 b 0 (Bytes.length b)

(* --- digest helpers -------------------------------------------------- *)

(* Hashtbl iteration order is not deterministic across runs with
   different insertion histories, so digest bindings in sorted order *)
let sorted_bindings h =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let digest_hashtbl ~key ~value h d =
  List.fold_left
    (fun d (k, v) -> Digest64.string (Digest64.string d (key k)) (value v))
    (Digest64.int d (Hashtbl.length h))
    (sorted_bindings h)
