(** Block device with fault and attack injection.

    The storage medium under the legacy file-system stack. Exposes the
    attack operations the VPFS experiments need: silent corruption and
    rollback (returning stale block contents), both of which a trusted
    wrapper must detect. *)

type t

val block_size : int
(** 512 bytes. *)

(** [create ~blocks] — a zeroed device. *)
val create : blocks:int -> t

val blocks : t -> int

(** [read t i] / [write t i data] — whole-block IO. [data] shorter than
    a block is zero-padded; longer raises [Invalid_argument]. *)
val read : t -> int -> string

val write : t -> int -> string -> unit

(** {2 Attack / fault injection} *)

(** [corrupt t i rng] overwrites block [i] with random bytes. *)
val corrupt : t -> int -> Lt_crypto.Drbg.t -> unit

(** [snapshot t i] captures the current contents; [rollback t i snap]
    silently restores them later — the stale-data attack. *)
val snapshot : t -> int -> string

val rollback : t -> int -> string -> unit

(** [reads t] / [writes t] — IO counters for overhead benchmarks. *)
val reads : t -> int

val writes : t -> int

(** Capture the device image (copy-on-write) and op counters; the
    returned thunk restores both (re-runnable). *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
