open Lt_crypto

type error =
  | Not_found of string
  | Already_exists of string
  | No_space
  | Io_error of string
  | Corrupt of string

type evil_mode = Honest | Corrupt_reads of Drbg.t | Serve_stale

exception Crashed

type file = { mutable size : int; mutable fblocks : int list }

type t = {
  dev : Block.t;
  files : (string, file) Hashtbl.t;
  mutable free : int list;
  mutable evil : evil_mode;
  mutable seen : string list;
  stale : (string, string) Hashtbl.t; (* previous contents per path *)
  mutable crash_in : int option; (* writes remaining before power loss *)
}

let magic = "LTFS1"

let meta_blocks = 96

let data_start = 1 + meta_blocks

let all_data_blocks dev =
  List.init (Block.blocks dev - data_start) (fun i -> data_start + i)

(* --- metadata (de)serialization ------------------------------------------ *)

let serialize t =
  let entries =
    Hashtbl.fold
      (fun path f acc ->
        Wire.encode
          [ path;
            string_of_int f.size;
            String.concat "," (List.map string_of_int f.fblocks) ]
        :: acc)
      t.files []
  in
  Wire.encode entries

(* Decoding is total: a flipped bit anywhere in the metadata region must
   come back as [Error (Corrupt _)], never as an exception — and every
   block index a decoded file claims must actually exist on the device,
   or a later [read] would walk off the end of it. *)

let parse_blocks t s =
  if s = "" then Ok []
  else
    let fields = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | f :: rest ->
        (match int_of_string_opt f with
         | Some b when b >= data_start && b < Block.blocks t.dev ->
           go (b :: acc) rest
         | Some b -> Error (Corrupt (Printf.sprintf "block index %d out of range" b))
         | None -> Error (Corrupt "unreadable block index"))
    in
    go [] fields

let deserialize t data =
  match Wire.decode data with
  | None -> Error (Corrupt "metadata directory undecodable")
  | Some entries ->
    let rec go = function
      | [] -> Ok ()
      | e :: rest ->
        (match Wire.decode e with
         | Some [ path; size; blocks ] ->
           (match (int_of_string_opt size, parse_blocks t blocks) with
            | None, _ -> Error (Corrupt "unreadable file size")
            | _, (Error _ as e) -> e
            | Some size, Ok fblocks ->
              if size < 0 || size > List.length fblocks * Block.block_size then
                Error
                  (Corrupt
                     (Printf.sprintf "file %S size %d exceeds its %d block(s)" path
                        size (List.length fblocks)))
              else begin
                Hashtbl.replace t.files path { size; fblocks };
                go rest
              end)
         | _ -> Error (Corrupt "bad directory entry"))
    in
    go entries

let sync t =
  let meta = serialize t in
  if String.length meta > meta_blocks * Block.block_size then
    invalid_arg "Legacy_fs.sync: metadata region overflow";
  Block.write t.dev 0 (Wire.encode [ magic; string_of_int (String.length meta) ]);
  let rec store off i =
    if off < String.length meta then begin
      let n = min Block.block_size (String.length meta - off) in
      Block.write t.dev (1 + i) (String.sub meta off n);
      store (off + n) (i + 1)
    end
  in
  store 0 0

let format dev =
  if Block.blocks dev <= data_start then invalid_arg "Legacy_fs.format: device too small";
  let t =
    { dev;
      files = Hashtbl.create 16;
      free = all_data_blocks dev;
      evil = Honest;
      seen = [];
      stale = Hashtbl.create 16;
      crash_in = None }
  in
  sync t;
  t

let mount dev =
  if Block.blocks dev <= data_start then Error (Corrupt "device too small")
  else
  let sb = Block.read dev 0 in
  (* the superblock block is zero-padded, so parse its two fields
     (magic, metadata length) manually instead of Wire.decode *)
    let field off =
      if off < 0 || off + 8 > String.length sb then None
      else
        match int_of_string_opt (String.sub sb off 8) with
        | Some n when n >= 0 && off + 8 + n <= String.length sb ->
          Some (String.sub sb (off + 8) n, off + 8 + n)
        | _ -> None
    in
    (match field 0 with
     | Some (m, o1) when m = magic ->
       (match field o1 with
        | Some (len_str, _) ->
          (match int_of_string_opt len_str with
           | Some meta_len when meta_len >= 0 && meta_len <= meta_blocks * Block.block_size
             ->
             let buf = Buffer.create meta_len in
             let rec load i =
               if Buffer.length buf < meta_len then begin
                 let blk = Block.read dev (1 + i) in
                 let n = min Block.block_size (meta_len - Buffer.length buf) in
                 Buffer.add_string buf (String.sub blk 0 n);
                 load (i + 1)
               end
             in
             load 0;
             let t =
               { dev;
                 files = Hashtbl.create 16;
                 free = [];
                 evil = Honest;
                 seen = [];
                 stale = Hashtbl.create 16;
                 crash_in = None }
             in
             (match deserialize t (Buffer.contents buf) with
              | Error e -> Error e
              | Ok () ->
                let used = Hashtbl.create 64 in
                Hashtbl.iter
                  (fun _ f -> List.iter (fun b -> Hashtbl.replace used b ()) f.fblocks)
                  t.files;
                t.free <-
                  List.filter (fun b -> not (Hashtbl.mem used b)) (all_data_blocks dev);
                Ok t)
           | _ -> Error (Corrupt "bad superblock length"))
        | None -> Error (Corrupt "bad superblock"))
     | _ -> Error (Corrupt "bad magic"))

let check_alive t =
  match t.crash_in with
  | Some 0 -> raise Crashed
  | _ -> ()

let consume_write_budget t =
  match t.crash_in with
  | Some 0 -> raise Crashed
  | Some n -> t.crash_in <- Some (n - 1)
  | None -> ()

let create t path =
  check_alive t;
  if Hashtbl.mem t.files path then Error (Already_exists path)
  else begin
    Hashtbl.replace t.files path { size = 0; fblocks = [] };
    sync t;
    Ok ()
  end

let read_raw t path =
  match Hashtbl.find_opt t.files path with
  | None -> Error (Not_found path)
  | Some f ->
    let buf = Buffer.create f.size in
    List.iter (fun b -> Buffer.add_string buf (Block.read t.dev b)) f.fblocks;
    Ok (String.sub (Buffer.contents buf) 0 f.size)

let write t path data =
  consume_write_budget t;
  let f =
    match Hashtbl.find_opt t.files path with
    | Some f -> f
    | None ->
      let f = { size = 0; fblocks = [] } in
      Hashtbl.replace t.files path f;
      f
  in
  (* remember the old version for the stale-serving attack *)
  (match read_raw t path with
   | Ok old when f.fblocks <> [] -> Hashtbl.replace t.stale path old
   | _ -> ());
  t.seen <- data :: t.seen;
  let needed = (String.length data + Block.block_size - 1) / Block.block_size in
  let total_available = List.length t.free + List.length f.fblocks in
  if needed > total_available then Error No_space
  else begin
    t.free <- f.fblocks @ t.free;
    let rec take n acc free =
      if n = 0 then (List.rev acc, free)
      else
        match free with
        | [] -> assert false
        | b :: rest -> take (n - 1) (b :: acc) rest
    in
    let blocks, free = take needed [] t.free in
    t.free <- free;
    List.iteri
      (fun i b ->
        let off = i * Block.block_size in
        let n = min Block.block_size (String.length data - off) in
        Block.write t.dev b (String.sub data off n))
      blocks;
    f.size <- String.length data;
    f.fblocks <- blocks;
    sync t;
    Ok ()
  end

let read t path =
  check_alive t;
  match read_raw t path with
  | Error e -> Error e
  | Ok data ->
    (match t.evil with
     | Honest -> Ok data
     | Corrupt_reads rng ->
       if data = "" then Ok data
       else begin
         let b = Bytes.of_string data in
         (* flip a handful of bytes *)
         for _ = 1 to max 1 (Bytes.length b / 64) do
           let i = Drbg.int rng (Bytes.length b) in
           Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF))
         done;
         Ok (Bytes.unsafe_to_string b)
       end
     | Serve_stale ->
       (match Hashtbl.find_opt t.stale path with
        | Some old -> Ok old
        | None -> Ok data))

let delete t path =
  check_alive t;
  match Hashtbl.find_opt t.files path with
  | None -> Error (Not_found path)
  | Some f ->
    t.free <- f.fblocks @ t.free;
    Hashtbl.remove t.files path;
    Hashtbl.remove t.stale path;
    sync t;
    Ok ()

let exists t path = Hashtbl.mem t.files path

let size t path =
  match Hashtbl.find_opt t.files path with
  | None -> Error (Not_found path)
  | Some f -> Ok f.size

let list t =
  Hashtbl.fold (fun path _ acc -> path :: acc) t.files [] |> List.sort Stdlib.compare

let set_evil t mode = t.evil <- mode

let observed t = List.rev t.seen

let crash_after_writes t n =
  if n < 0 then invalid_arg "Legacy_fs.crash_after_writes";
  t.crash_in <- Some n

let observed_contains t ~needle =
  let contains hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    n > 0 && go 0
  in
  List.exists contains t.seen

let pp_error fmt = function
  | Not_found p -> Format.fprintf fmt "not found: %s" p
  | Already_exists p -> Format.fprintf fmt "already exists: %s" p
  | No_space -> Format.pp_print_string fmt "no space"
  | Io_error e -> Format.fprintf fmt "io error: %s" e
  | Corrupt e -> Format.fprintf fmt "corrupt image: %s" e

(* --- Snapshottable ---------------------------------------------------- *)

(* [file] records are mutable and private to this module: capture their
   field values and rebuild fresh records on restore.  The block device
   underneath has its own capture. *)
let take_snapshot t =
  let files =
    Hashtbl.fold (fun p f acc -> (p, f.size, f.fblocks) :: acc) t.files []
  in
  let free = t.free in
  (* an evil generator's stream position is part of the state *)
  let evil =
    match t.evil with
    | Corrupt_reads rng -> `Corrupt_reads (rng, Drbg.save rng)
    | Honest -> `Honest
    | Serve_stale -> `Serve_stale
  in
  let seen = t.seen in
  let stale = Lt_world.Snapshottable.save_hashtbl t.stale in
  let crash_in = t.crash_in in
  let dev = Block.take_snapshot t.dev in
  fun () ->
    Hashtbl.reset t.files;
    List.iter
      (fun (p, size, fblocks) -> Hashtbl.replace t.files p { size; fblocks })
      files;
    t.free <- free;
    (match evil with
     | `Honest -> t.evil <- Honest
     | `Serve_stale -> t.evil <- Serve_stale
     | `Corrupt_reads (rng, state) ->
       Drbg.restore rng state;
       t.evil <- Corrupt_reads rng);
    t.seen <- seen;
    stale ();
    t.crash_in <- crash_in;
    dev ()

let state_digest t =
  let open Lt_world in
  Digest64.basis
  |> Fun.flip Digest64.combine (Block.state_digest t.dev)
  |> Snapshottable.digest_hashtbl ~key:Fun.id
       ~value:(fun f ->
         Printf.sprintf "%d|%s" f.size
           (String.concat "," (List.map string_of_int f.fblocks)))
       t.files
  |> Fun.flip (Digest64.list Digest64.int) t.free
  |> Fun.flip Digest64.int
       (match t.evil with
        | Honest -> 0
        | Corrupt_reads _ -> 1
        | Serve_stale -> 2)
  |> Fun.flip (Digest64.list Digest64.string) t.seen
  |> Snapshottable.digest_hashtbl ~key:Fun.id ~value:Fun.id t.stale
  |> Fun.flip (Digest64.option Digest64.int) t.crash_in
