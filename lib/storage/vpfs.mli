(** VPFS: Virtual Private File System — the trusted wrapper of §III-D.

    "The legacy stack takes care of actually storing file contents and
    managing the storage medium, but it never handles plaintext data.
    Instead, the VPFS wrapper guarantees confidentiality and integrity
    of all file system data and metadata by means of encryption and
    message authentication codes."

    Design: file contents are chunked and AEAD-encrypted with per-file
    keys; associated data binds each chunk to (path, index, version) so
    reordering, cross-file splicing and per-file rollback are all
    detected. The metadata table (per-file keys, versions, sizes, chunk
    counts) is itself AEAD-encrypted under the master key and stored in
    the legacy FS; its digest — the root of trust — lives in trusted
    memory and must be provided at re-open, which is what defeats
    whole-FS rollback. *)

type t

type error =
  | Not_found of string
  | Integrity of string     (** tampering, rollback or splicing detected *)
  | Backend of Legacy_fs.error

(** [create ~master_key fs] formats a fresh VPFS inside the legacy FS. *)
val create : master_key:string -> Legacy_fs.t -> t

(** [open_ ~master_key ~expected_root fs] re-opens after a remount. The
    caller supplies the root digest it kept in trusted storage (e.g.
    sealed by a TPM); a stale or doctored metadata file fails here. *)
val open_ : master_key:string -> expected_root:string -> Legacy_fs.t ->
  (t, error) result

(** [open_recover ~master_key ~expected_root fs] — crash-consistent
    open (the jVPFS robustness layer). Every mutation is preceded by an
    authenticated redo record that binds the pre-state root; if power
    was lost anywhere in the update sequence, recovery replays the
    record and lands in the committed post-state. [`Recovered] signals
    that {!root} has moved and must be re-persisted to trusted storage.
    Tampered journals and rolled-back images still fail with
    [Integrity]. *)
val open_recover :
  master_key:string -> expected_root:string -> Legacy_fs.t ->
  (t * [ `Clean | `Recovered ], error) result

(** [root t] is the current root digest — persist it somewhere trusted
    after every mutation (the paper pairs VPFS with a TPM or SEP). *)
val root : t -> string

val write : t -> string -> string -> (unit, error) result

val read : t -> string -> (string, error) result

val delete : t -> string -> (unit, error) result

val exists : t -> string -> bool

val list : t -> string list

val pp_error : Format.formatter -> error -> unit

(** Capture the file table, nonce generator and root digest; the
    backing {!Legacy_fs} is captured separately via its own hook. *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
