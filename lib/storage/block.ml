let block_size = 512

module Cow = Lt_world.Cow

type t = {
  data : Cow.t;
  count : int;
  mutable read_ops : int;
  mutable write_ops : int;
}

let create ~blocks =
  if blocks <= 0 then invalid_arg "Block.create";
  { data = Cow.create ~len:(blocks * block_size);
    count = blocks;
    read_ops = 0;
    write_ops = 0 }

let blocks t = t.count

let check t i = if i < 0 || i >= t.count then invalid_arg "Block: index out of range"

let read t i =
  check t i;
  t.read_ops <- t.read_ops + 1;
  Cow.sub_string t.data ~pos:(i * block_size) ~len:block_size

let write t i data =
  check t i;
  if String.length data > block_size then invalid_arg "Block.write: oversized";
  t.write_ops <- t.write_ops + 1;
  let padded =
    if String.length data = block_size then data
    else data ^ String.make (block_size - String.length data) '\000'
  in
  Cow.blit_string padded t.data ~pos:(i * block_size)

let corrupt t i rng =
  check t i;
  Cow.blit_string (Lt_crypto.Drbg.bytes rng block_size) t.data ~pos:(i * block_size)

let snapshot t i =
  check t i;
  Cow.sub_string t.data ~pos:(i * block_size) ~len:block_size

let rollback t i snap =
  check t i;
  if String.length snap <> block_size then invalid_arg "Block.rollback";
  Cow.blit_string snap t.data ~pos:(i * block_size)

let reads t = t.read_ops

let writes t = t.write_ops

(* --- Snapshottable ---------------------------------------------------- *)

let take_snapshot t =
  let data = Cow.snapshot t.data in
  let r = t.read_ops and w = t.write_ops in
  fun () ->
    Cow.restore t.data data;
    t.read_ops <- r;
    t.write_ops <- w

let state_digest t =
  let open Lt_world.Digest64 in
  int (int (combine basis (Cow.digest t.data)) t.read_ops) t.write_ops
