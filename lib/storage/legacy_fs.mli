(** Legacy file-system stack (§III-D).

    "The file system stack, including the storage device layer, is one
    of the most complex OS services ... likely to contain exploitable
    weaknesses. Thus, trusted components should not rely on file system
    code to maintain data integrity or confidentiality."

    This is an honest-to-goodness inode file system persisted on a
    {!Block} device (format / mount / sync survive remounts) — plus the
    dishonest part: evil modes that corrupt reads or serve stale data,
    and a transcript of everything it has ever been given, so tests can
    prove a trusted wrapper never leaked plaintext to it. *)

type t

type error =
  | Not_found of string
  | Already_exists of string
  | No_space
  | Io_error of string
  | Corrupt of string
      (** the on-disk image is damaged (bad magic, undecodable directory,
          out-of-range block index, impossible file size). Decoding is
          total: damaged images mount to this error, never an exception. *)

(** How a compromised stack misbehaves on [read]. *)
type evil_mode =
  | Honest
  | Corrupt_reads of Lt_crypto.Drbg.t  (** flip bytes in returned data *)
  | Serve_stale                        (** return the previous version *)

(** Power was lost: the in-memory handle is dead; re-{!mount} the device
    to continue. Raised by every operation after the injected crash
    point. *)
exception Crashed

(** [format dev] writes a fresh empty file system. *)
val format : Block.t -> t

(** [mount dev] re-opens an existing file system. [Error (Corrupt _)]
    on a damaged image, whatever the damage. *)
val mount : Block.t -> (t, error) result

(** [sync t] flushes metadata so a later {!mount} sees current state. *)
val sync : t -> unit

val create : t -> string -> (unit, error) result

val write : t -> string -> string -> (unit, error) result
(** [write t path data] replaces the file's contents. *)

val read : t -> string -> (string, error) result

val delete : t -> string -> (unit, error) result

val exists : t -> string -> bool

val size : t -> string -> (int, error) result

val list : t -> string list

(** {2 Compromise modelling} *)

val set_evil : t -> evil_mode -> unit

(** [observed t] is every byte string ever handed to the stack via
    {!write} — what a compromised FS could exfiltrate. *)
val observed : t -> string list

(** [observed_contains t ~needle] — did any plaintext leak here? *)
val observed_contains : t -> needle:string -> bool

(** [crash_after_writes t n] injects a power failure: the next [n]
    {!write} calls succeed, every operation after that raises
    {!Crashed} (the n+1-th write never reaches the device). For
    crash-consistency testing of wrappers layered above. *)
val crash_after_writes : t -> int -> unit

val pp_error : Format.formatter -> error -> unit

(** Capture files, free list, failure-injection state and the device
    image; the returned thunk restores all of it (re-runnable). *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
