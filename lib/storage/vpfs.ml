open Lt_crypto

let chunk_size = 1024

let meta_path = ".vpfs-meta"

let journal_path = ".vpfs-journal"

type entry = {
  file_key : string;
  version : int;
  plain_size : int;
  chunks : int;
}

type error =
  | Not_found of string
  | Integrity of string
  | Backend of Legacy_fs.error

type t = {
  master_key : string;
  fs : Legacy_fs.t;
  table : (string, entry) Hashtbl.t;
  rng : Drbg.t;
  mutable root_digest : string;
}

(* --- metadata ------------------------------------------------------------- *)

let serialize_table t =
  let entries =
    Hashtbl.fold
      (fun path e acc ->
        Wire.encode
          [ path;
            e.file_key;
            string_of_int e.version;
            string_of_int e.plain_size;
            string_of_int e.chunks ]
        :: acc)
      t.table []
  in
  Wire.encode (List.sort Stdlib.compare entries)

let meta_key master_key = Hkdf.derive ~secret:master_key ~salt:"vpfs" ~info:"meta" 16

let journal_key master_key =
  Hkdf.derive ~secret:master_key ~salt:"vpfs" ~info:"journal" 16

(* encrypt the current table once; the same bytes go to the journal
   record and to the metadata file so the redo is exact *)
let encrypt_meta t =
  let plain = serialize_table t in
  let nonce = Drbg.bytes t.rng Speck.nonce_size in
  Speck.Aead.to_wire
    (Speck.Aead.encrypt ~key:(meta_key t.master_key) ~nonce ~ad:"vpfs-meta" plain)

let must_write fs path data =
  match Legacy_fs.write fs path data with
  | Ok () -> ()
  | Error e ->
    invalid_arg (Format.asprintf "vpfs: backend write: %a" Legacy_fs.pp_error e)

let flush_meta t =
  let wire = encrypt_meta t in
  must_write t.fs meta_path wire;
  t.root_digest <- Sha256.digest wire

(* --- write-ahead redo journal (jVPFS-style robustness) ------------------- *)

type journal_record = {
  j_op : string;          (* "write" or "delete" *)
  j_pre_root : string;    (* trusted state this update departs from *)
  j_post_root : string;   (* digest of j_meta_wire *)
  j_path : string;
  j_file_wire : string;   (* sealed file contents ("" for delete) *)
  j_meta_wire : string;   (* committed metadata bytes *)
}

let seal_journal t r =
  let plain =
    Wire.encode
      [ r.j_op; r.j_pre_root; r.j_post_root; r.j_path; r.j_file_wire; r.j_meta_wire ]
  in
  let nonce = Drbg.bytes t.rng Speck.nonce_size in
  Speck.Aead.to_wire
    (Speck.Aead.encrypt ~key:(journal_key t.master_key) ~nonce ~ad:"vpfs-journal"
       plain)

let open_journal ~master_key wire =
  match Speck.Aead.of_wire wire with
  | None -> None
  | Some box ->
    (match Speck.Aead.decrypt ~key:(journal_key master_key) ~ad:"vpfs-journal" box with
     | None -> None
     | Some plain ->
       (match Wire.decode plain with
        | Some [ j_op; j_pre_root; j_post_root; j_path; j_file_wire; j_meta_wire ] ->
          Some { j_op; j_pre_root; j_post_root; j_path; j_file_wire; j_meta_wire }
        | _ -> None))

(* journal first, then data, then metadata, then clear: a crash anywhere
   leaves either the old state (journal explains nothing yet) or enough
   to redo forward into the new state *)
let commit t record =
  must_write t.fs journal_path (seal_journal t record);
  (match record.j_op with
   | "write" -> must_write t.fs record.j_path record.j_file_wire
   | _ ->
     (match Legacy_fs.delete t.fs record.j_path with
      | Ok () | Error (Legacy_fs.Not_found _) -> ()
      | Error e ->
        invalid_arg (Format.asprintf "vpfs: backend delete: %a" Legacy_fs.pp_error e)));
  must_write t.fs meta_path record.j_meta_wire;
  t.root_digest <- record.j_post_root;
  must_write t.fs journal_path ""

let load_meta ~master_key ~expected_root fs =
  match Legacy_fs.read fs meta_path with
  | Error e -> Error (Backend e)
  | Ok wire ->
    if Sha256.digest wire <> expected_root then
      Error (Integrity "metadata does not match trusted root (rollback or tamper)")
    else
      (match Speck.Aead.of_wire wire with
       | None -> Error (Integrity "metadata framing corrupt")
       | Some box ->
         (match Speck.Aead.decrypt ~key:(meta_key master_key) ~ad:"vpfs-meta" box with
          | None -> Error (Integrity "metadata authentication failed")
          | Some plain ->
            (match Wire.decode plain with
             | None -> Error (Integrity "metadata decode failed")
             | Some entries ->
               (* total: an authenticated-but-impossible entry (the meta
                  key leaked, or a bug sealed garbage) is a typed
                  integrity error, never an exception *)
               let table = Hashtbl.create 16 in
               let decode_entry e =
                 match Wire.decode e with
                 | Some [ path; file_key; version; plain_size; chunks ] ->
                   (match
                      ( int_of_string_opt version,
                        int_of_string_opt plain_size,
                        int_of_string_opt chunks )
                    with
                    | Some version, Some plain_size, Some chunks
                      when version >= 0 && plain_size >= 0 && chunks >= 0 ->
                      Ok (path, { file_key; version; plain_size; chunks })
                    | _ -> Error (Integrity "metadata entry has unreadable fields"))
                 | _ -> Error (Integrity "metadata entry decode failed")
               in
               let rec go = function
                 | [] -> Ok table
                 | e :: rest ->
                   (match decode_entry e with
                    | Ok (path, entry) ->
                      Hashtbl.replace table path entry;
                      go rest
                    | Error _ as err -> err)
               in
               go entries)))

let create ~master_key fs =
  let t =
    { master_key;
      fs;
      table = Hashtbl.create 16;
      rng = Drbg.create (Int64.of_int (Hashtbl.hash master_key));
      root_digest = "" }
  in
  flush_meta t;
  t

let open_ ~master_key ~expected_root fs =
  match load_meta ~master_key ~expected_root fs with
  | Error e -> Error e
  | Ok table ->
    Ok
      { master_key;
        fs;
        table;
        rng = Drbg.create (Int64.of_int (Hashtbl.hash (master_key ^ "reopen")));
        root_digest = expected_root }

let open_recover ~master_key ~expected_root fs =
  let pending_journal =
    match Legacy_fs.read fs journal_path with
    | Ok wire when wire <> "" -> open_journal ~master_key wire
    | Ok _ | Error _ -> None
  in
  let redo record =
    (* replay the committed update; idempotent *)
    (match record.j_op with
     | "write" ->
       (match Legacy_fs.write fs record.j_path record.j_file_wire with
        | Ok () -> ()
        | Error e ->
          invalid_arg (Format.asprintf "vpfs recovery: %a" Legacy_fs.pp_error e))
     | _ ->
       (match Legacy_fs.delete fs record.j_path with
        | Ok () | Error (Legacy_fs.Not_found _) -> ()
        | Error e ->
          invalid_arg (Format.asprintf "vpfs recovery: %a" Legacy_fs.pp_error e)));
    (match Legacy_fs.write fs meta_path record.j_meta_wire with
     | Ok () -> ()
     | Error e ->
       invalid_arg (Format.asprintf "vpfs recovery: %a" Legacy_fs.pp_error e));
    (match Legacy_fs.write fs journal_path "" with
     | Ok () -> ()
     | Error e ->
       invalid_arg (Format.asprintf "vpfs recovery: %a" Legacy_fs.pp_error e))
  in
  match pending_journal with
  | Some record when record.j_pre_root = expected_root ->
    (* an update departing from the trusted state was in flight: roll it
       forward and open at the committed post-state *)
    (try
       redo record;
       (match open_ ~master_key ~expected_root:record.j_post_root fs with
        | Ok t -> Ok (t, `Recovered)
        | Error e -> Error e)
     with Invalid_argument m -> Error (Backend (Legacy_fs.Io_error m)))
  | Some _ | None ->
    (* no journal that explains a transition from our trusted state:
       the metadata must match the root exactly *)
    (match open_ ~master_key ~expected_root fs with
     | Ok t -> Ok (t, `Clean)
     | Error e -> Error e)

let root t = t.root_digest

(* --- chunk crypto ---------------------------------------------------------- *)

let chunk_ad ~path ~index ~version =
  Printf.sprintf "vpfs|%s|%d|%d" path index version

let split_chunks data =
  let n = String.length data in
  if n = 0 then [ "" ]
  else begin
    let rec go off acc =
      if off >= n then List.rev acc
      else begin
        let len = min chunk_size (n - off) in
        go (off + len) (String.sub data off len :: acc)
      end
    in
    go 0 []
  end

let write t path data =
  let version =
    match Hashtbl.find_opt t.table path with
    | Some e -> e.version + 1
    | None -> 1
  in
  let file_key = Hkdf.derive ~secret:t.master_key ~salt:"vpfs-file" ~info:path 16 in
  let chunks = split_chunks data in
  let sealed =
    List.mapi
      (fun index chunk ->
        let nonce = Drbg.bytes t.rng Speck.nonce_size in
        Speck.Aead.to_wire
          (Speck.Aead.encrypt ~key:file_key ~nonce
             ~ad:(chunk_ad ~path ~index ~version) chunk))
      chunks
  in
  let pre_root = t.root_digest in
  Hashtbl.replace t.table path
    { file_key; version; plain_size = String.length data; chunks = List.length chunks };
  let meta_wire = encrypt_meta t in
  let record =
    { j_op = "write";
      j_pre_root = pre_root;
      j_post_root = Sha256.digest meta_wire;
      j_path = path;
      j_file_wire = Wire.encode sealed;
      j_meta_wire = meta_wire }
  in
  (try
     commit t record;
     Ok ()
   with Invalid_argument m -> Error (Backend (Legacy_fs.Io_error m)))

let read t path =
  match Hashtbl.find_opt t.table path with
  | None -> Error (Not_found path)
  | Some e ->
    (match Legacy_fs.read t.fs path with
     | Error err -> Error (Backend err)
     | Ok wire ->
       (match Wire.decode wire with
        | None -> Error (Integrity "file framing corrupt")
        | Some sealed ->
          if List.length sealed <> e.chunks then
            Error (Integrity "chunk count mismatch (truncation or rollback)")
          else begin
            let buf = Buffer.create e.plain_size in
            let rec go index = function
              | [] ->
                let data = Buffer.contents buf in
                if String.length data <> e.plain_size then
                  Error (Integrity "size mismatch")
                else Ok data
              | chunk_wire :: rest ->
                (match Speck.Aead.of_wire chunk_wire with
                 | None -> Error (Integrity "chunk framing corrupt")
                 | Some box ->
                   (match
                      Speck.Aead.decrypt ~key:e.file_key
                        ~ad:(chunk_ad ~path ~index ~version:e.version) box
                    with
                    | None ->
                      Error
                        (Integrity
                           (Printf.sprintf
                              "chunk %d authentication failed (tamper/rollback/splice)"
                              index))
                    | Some plain ->
                      Buffer.add_string buf plain;
                      go (index + 1) rest))
            in
            go 0 sealed
          end))

let delete t path =
  match Hashtbl.find_opt t.table path with
  | None -> Error (Not_found path)
  | Some _ ->
    let pre_root = t.root_digest in
    Hashtbl.remove t.table path;
    let meta_wire = encrypt_meta t in
    let record =
      { j_op = "delete";
        j_pre_root = pre_root;
        j_post_root = Sha256.digest meta_wire;
        j_path = path;
        j_file_wire = "";
        j_meta_wire = meta_wire }
    in
    (try
       commit t record;
       Ok ()
     with Invalid_argument m -> Error (Backend (Legacy_fs.Io_error m)))

let exists t path = Hashtbl.mem t.table path

let list t =
  Hashtbl.fold (fun path _ acc -> path :: acc) t.table [] |> List.sort Stdlib.compare

let pp_error fmt = function
  | Not_found p -> Format.fprintf fmt "not found: %s" p
  | Integrity m -> Format.fprintf fmt "integrity violation: %s" m
  | Backend e -> Format.fprintf fmt "backend: %a" Legacy_fs.pp_error e

(* --- Snapshottable ---------------------------------------------------- *)

(* entries are immutable; the backing Legacy_fs has its own capture *)
let take_snapshot t =
  let table = Lt_world.Snapshottable.save_hashtbl t.table in
  let rng = Drbg.save t.rng in
  let root = t.root_digest in
  fun () ->
    table ();
    Drbg.restore t.rng rng;
    t.root_digest <- root

let state_digest t =
  let open Lt_world in
  Digest64.basis
  |> Snapshottable.digest_hashtbl ~key:Fun.id
       ~value:(fun e ->
         Printf.sprintf "%s|%d|%d|%d" e.file_key e.version e.plain_size e.chunks)
       t.table
  |> Fun.flip Digest64.int64 (Drbg.save t.rng)
  |> Fun.flip Digest64.string t.root_digest
