open Lt_crypto

type tile = int

type ep_config = Send of { target : tile; credits : int } | Receive

exception Dtu_fault of string

type ep_state =
  | Ep_send of { target : tile; mutable credits : int }
  | Ep_receive

type queued = { q_sender : tile; q_ep : int; q_payload : string }

type tile_state = {
  eps : (int, ep_state) Hashtbl.t;
  spm : Bytes.t;
  queue : queued Queue.t;
  mutable program : (string -> string) option;
  mutable code_hash : string option;
}

type t = { tiles : tile_state array }

let kernel_tile = 0

let fault fmt = Printf.ksprintf (fun s -> raise (Dtu_fault s)) fmt

let create ~tiles ~scratchpad_size =
  if tiles < 2 then invalid_arg "Noc.create: need a kernel tile and compute tiles";
  { tiles =
      Array.init tiles (fun _ ->
          { eps = Hashtbl.create 4;
            spm = Bytes.make scratchpad_size '\000';
            queue = Queue.create ();
            program = None;
            code_hash = None }) }

let tile_state t tile =
  if tile < 0 || tile >= Array.length t.tiles then fault "no tile %d" tile;
  t.tiles.(tile)

let configure t ~by ~tile ~ep config =
  if by <> kernel_tile then fault "tile %d tried to configure a DTU" by;
  let ts = tile_state t tile in
  Hashtbl.replace ts.eps ep
    (match config with
     | Send { target; credits } ->
       ignore (tile_state t target);
       Ep_send { target; credits }
     | Receive -> Ep_receive)

let install_program t ~tile ~code f =
  let ts = tile_state t tile in
  ts.program <- Some f;
  ts.code_hash <- Some (Sha256.digest ("m3-tile-program|" ^ code))

let measurement t ~tile = (tile_state t tile).code_hash

let send t ~from_tile ~ep request =
  let ts = tile_state t from_tile in
  match Hashtbl.find_opt ts.eps ep with
  | None -> Error (Printf.sprintf "dtu fault: tile %d has no endpoint %d" from_tile ep)
  | Some Ep_receive -> Error "dtu fault: cannot send on a receive endpoint"
  | Some (Ep_send s) ->
    if s.credits <= 0 then Error "dtu: out of credits"
    else begin
      let target = tile_state t s.target in
      (* the target must have a receive endpoint at all *)
      let has_recv =
        Hashtbl.fold (fun _ e acc -> acc || e = Ep_receive) target.eps false
      in
      if not has_recv then
        Error (Printf.sprintf "dtu fault: tile %d accepts no messages" s.target)
      else
        match target.program with
        | None -> Error (Printf.sprintf "tile %d has no program" s.target)
        | Some f ->
          s.credits <- s.credits - 1;
          let reply = (try Ok (f request) with exn -> Error (Printexc.to_string exn)) in
          (* the reply restores the credit (M3 credit protocol) *)
          s.credits <- s.credits + 1;
          reply
    end

let post t ~from_tile ~ep request =
  let ts = tile_state t from_tile in
  match Hashtbl.find_opt ts.eps ep with
  | None -> Error (Printf.sprintf "dtu fault: tile %d has no endpoint %d" from_tile ep)
  | Some Ep_receive -> Error "dtu fault: cannot send on a receive endpoint"
  | Some (Ep_send s) ->
    if s.credits <= 0 then Error "dtu: out of credits"
    else begin
      let target = tile_state t s.target in
      let has_recv =
        Hashtbl.fold (fun _ e acc -> acc || e = Ep_receive) target.eps false
      in
      if not has_recv then
        Error (Printf.sprintf "dtu fault: tile %d accepts no messages" s.target)
      else begin
        s.credits <- s.credits - 1;
        Queue.add { q_sender = from_tile; q_ep = ep; q_payload = request } target.queue;
        Ok ()
      end
    end

let drain t ~tile =
  let ts = tile_state t tile in
  let replies = ref [] in
  Queue.iter
    (fun q ->
      (* restore the sender's credit *)
      (match Hashtbl.find_opt (tile_state t q.q_sender).eps q.q_ep with
       | Some (Ep_send s) -> s.credits <- s.credits + 1
       | _ -> ());
      match ts.program with
      | Some f -> replies := (try f q.q_payload with _ -> "<crash>") :: !replies
      | None -> ())
    ts.queue;
  Queue.clear ts.queue;
  List.rev !replies

let queue_length t ~tile = Queue.length (tile_state t tile).queue

let credits t ~tile ~ep =
  match Hashtbl.find_opt (tile_state t tile).eps ep with
  | Some (Ep_send s) -> Some s.credits
  | _ -> None

let spm_write t ~tile ~off data =
  let ts = tile_state t tile in
  if off < 0 || off + String.length data > Bytes.length ts.spm then
    fault "spm write out of bounds on tile %d" tile;
  Bytes.blit_string data 0 ts.spm off (String.length data)

let spm_read t ~tile ~off ~len =
  let ts = tile_state t tile in
  if off < 0 || len < 0 || off + len > Bytes.length ts.spm then
    fault "spm read out of bounds on tile %d" tile;
  Bytes.sub_string ts.spm off len

let spm_scan _t ~needle =
  ignore needle;
  (* scratchpads are on-chip: a memory-bus probe sees none of them *)
  []

(* --- Snapshottable ---------------------------------------------------- *)

(* Ep_send carries a mutable credit count: rebuild fresh ep records on
   restore (nothing outside this module holds them) *)
let take_snapshot t =
  let saves =
    Array.map
      (fun ts ->
        let eps =
          Hashtbl.fold
            (fun ep e acc ->
              (ep,
               match e with
               | Ep_receive -> `Receive
               | Ep_send s -> `Send (s.target, s.credits))
              :: acc)
            ts.eps []
        in
        let spm = Lt_world.Snapshottable.save_bytes ts.spm in
        let queue = Lt_world.Snapshottable.save_queue ts.queue in
        let program = ts.program in
        let code_hash = ts.code_hash in
        fun () ->
          Hashtbl.reset ts.eps;
          List.iter
            (fun (ep, e) ->
              Hashtbl.replace ts.eps ep
                (match e with
                 | `Receive -> Ep_receive
                 | `Send (target, credits) -> Ep_send { target; credits }))
            eps;
          spm ();
          queue ();
          ts.program <- program;
          ts.code_hash <- code_hash)
      t.tiles
  in
  fun () -> Array.iter (fun restore -> restore ()) saves

let state_digest t =
  let open Lt_world in
  Array.fold_left
    (fun d ts ->
      Snapshottable.digest_hashtbl ~key:string_of_int
        ~value:(function
          | Ep_receive -> "recv"
          | Ep_send s -> Printf.sprintf "send:%d:%d" s.target s.credits)
        ts.eps d
      |> Fun.flip Digest64.bytes ts.spm
      |> Fun.flip Digest64.int (Queue.length ts.queue)
      |> Fun.flip (Digest64.option Digest64.string) ts.code_hash)
    (Digest64.int Digest64.basis (Array.length t.tiles))
    t.tiles
