(** Network-on-chip message isolation for heterogeneous manycores
    (§II-B: "network-on-chip-based message isolation, which is used in
    research systems for heterogeneous manycores" — the M3 design).

    The model: compute tiles run application code with {e no kernel
    underneath}; every external interaction goes through the tile's DTU
    (data transfer unit), whose endpoints only a dedicated kernel tile
    can configure. Isolation is a property of the interconnect: a tile
    without a configured endpoint to a target simply has no wire to it.
    Send endpoints carry credits, so a tile cannot flood a peer beyond
    what the kernel provisioned. Each tile has private scratchpad
    memory (on-chip, invisible to bus probes). *)

type t

type tile = int

(** DTU endpoint configuration. *)
type ep_config =
  | Send of { target : tile; credits : int }
      (** may send to [target]'s receive queue, flow-controlled *)
  | Receive
      (** accepts messages; the tile's program handles them *)

exception Dtu_fault of string

(** [create ~tiles ~scratchpad_size] — a chip with [tiles] compute
    tiles (tile 0 is the kernel tile) each with its own scratchpad. *)
val create : tiles:int -> scratchpad_size:int -> t

val kernel_tile : tile

(** [configure t ~by ~tile ~ep config] — installs an endpoint. Only the
    kernel tile may configure DTUs; any other [by] raises
    {!Dtu_fault}. *)
val configure : t -> by:tile -> tile:tile -> ep:int -> ep_config -> unit

(** [install_program t ~tile f] loads [f] as the tile's message handler
    (request -> reply). Records the code's measurement. *)
val install_program : t -> tile:tile -> code:string -> (string -> string) -> unit

(** [measurement t ~tile] — hash of the code the kernel loaded there. *)
val measurement : t -> tile:tile -> string option

(** [send t ~from_tile ~ep request] — synchronous request/reply through
    the sender's Send endpoint. Fails with [Error] when the endpoint is
    unconfigured, mistyped, out of credits, or the target has no
    program. Consumes one credit; replies restore it. *)
val send : t -> from_tile:tile -> ep:int -> string -> (string, string) result

(** [credits t ~tile ~ep] — remaining credits on a send endpoint. *)
val credits : t -> tile:tile -> ep:int -> int option

(** [post t ~from_tile ~ep request] — one-way message: consumes a credit
    that is only restored when the receiver {!drain}s its queue. A tile
    can therefore never have more messages in flight to a peer than the
    kernel provisioned — interconnect-level flood protection. *)
val post : t -> from_tile:tile -> ep:int -> string -> (unit, string) result

(** [drain t ~tile] processes the tile's queue through its program and
    restores the senders' credits; returns the replies produced. *)
val drain : t -> tile:tile -> string list

(** [queue_length t ~tile]. *)
val queue_length : t -> tile:tile -> int

(** {2 Scratchpad (per-tile private memory)} *)

val spm_write : t -> tile:tile -> off:int -> string -> unit

val spm_read : t -> tile:tile -> off:int -> len:int -> string

(** [spm_scan t ~needle] — what an off-chip probe sees: nothing, the
    scratchpads are on-chip. Always []. A deliberately honest API for
    the physical-attack comparison. *)
val spm_scan : t -> needle:string -> int list

(** Capture every tile: endpoints (with credits), scratchpad, message
    queue and installed program. *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
