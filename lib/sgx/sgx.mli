(** Intel SGX: concurrent user-level enclaves on an untrusted OS (§II-B).

    The model captures exactly the properties the paper argues from:
    - enclaves are measured at build time and initialized immutable;
    - enclave memory is EPC: DRAM covered by a memory-encryption engine
      keyed per enclave, so neither the OS nor a physical attacker sees
      plaintext, and patched ciphertext is detected;
    - the *untrusted OS* schedules enclave execution — it cannot read
      enclave state but can starve it (§II-C);
    - enclaves share the CPU cache with the rest of the system, so a
      prime+probe attacker learns secret-dependent access patterns
      unless the cache is partitioned (§II-C, "hardware is leaky");
    - remote attestation goes through a quoting enclave whose key is
      certified by the manufacturer CA;
    - sealing binds data to (CPU secret, enclave measurement);
    - ocalls reach untrusted host services, and replies must be vetted
      by the enclave (§II-B, "needs to be done with care").  *)

type cpu

type enclave

(** What ecall handlers receive. *)
type ctx

type ecall_handler = ctx -> string -> string

(** [init_cpu machine rng ~ca_name ~ca_key] provisions SGX on a machine:
    fuses the CPU master secret and creates the quoting identity whose
    certificate chains to the manufacturer CA. One per machine. *)
val init_cpu :
  Lt_hw.Machine.t -> Lt_crypto.Drbg.t -> ca_name:string ->
  ca_key:Lt_crypto.Rsa.keypair -> cpu

val quoting_cert : cpu -> Lt_crypto.Cert.t

(** [create_enclave cpu ~name ~code ~epc_pages ~ecalls] builds and
    initializes an enclave: allocates EPC, installs its memory
    encryption, measures [code], registers entry points.
    Raises [Invalid_argument] when out of EPC. *)
val create_enclave :
  cpu -> name:string -> code:string -> epc_pages:int ->
  ecalls:(string * ecall_handler) list -> enclave

val enclave_name : enclave -> string

(** [measurement e] — MRENCLAVE, the identity verifiers whitelist. *)
val measurement : enclave -> string

(** [measure_code code] predicts the measurement of an enclave built
    from [code] (the verifier-side reference computation). *)
val measure_code : string -> string

(** [destroy e] tears the enclave down, zeroing and freeing its EPC. *)
val destroy : cpu -> enclave -> unit

(** {2 Entry and exit} *)

(** [ecall cpu e ~fn arg] enters the enclave. Errors on unknown entry
    point or a destroyed enclave. Charges transition ticks. *)
val ecall : cpu -> enclave -> fn:string -> string -> (string, string) result

(** [set_ocall_handler cpu f] installs the untrusted host's service
    function. Enclave code reaches it via {!ocall} and must treat the
    reply as hostile. *)
val set_ocall_handler : cpu -> (string -> string) -> unit

(** {2 Inside the enclave (for handlers)} *)

(** [ocall ctx req] calls out to the untrusted host. *)
val ocall : ctx -> string -> string

(** [mem_write ctx ~off data] / [mem_read ctx ~off ~len] access the
    enclave's EPC heap — physically encrypted DRAM. *)
val mem_write : ctx -> off:int -> string -> unit

val mem_read : ctx -> off:int -> len:int -> string

(** [seal ctx data] binds data to (CPU, measurement); any instance of
    the same enclave on the same CPU can {!unseal} it, nothing else. *)
val seal : ctx -> string -> string

val unseal : ctx -> string -> string option

(** [cache_touch ctx addr] models a data access through the shared
    cache, tagged with the enclave's domain — the footprint a
    prime+probe attacker observes. *)
val cache_touch : ctx -> int -> unit

(** {2 Attestation} *)

type quote = {
  q_measurement : string;
  q_nonce : string;
  q_report_data : string;   (** enclave-chosen binding, e.g. a key hash *)
  q_signature : string;
}

(** [quote cpu e ~nonce ~report_data] — the quoting enclave signs the
    enclave's measurement for a remote verifier. *)
val quote : cpu -> enclave -> nonce:string -> report_data:string -> quote

val verify_quote : qe_pub:Lt_crypto.Rsa.public -> quote -> bool

(** [qe_sign cpu ~body] — the quoting enclave signs an arbitrary
    statement on behalf of a local enclave (it verifies the requesting
    enclave's local report first; that step is modeled away). Used by
    the unified attestation layer. *)
val qe_sign : cpu -> body:string -> string

(** {2 Scheduling by the untrusted OS (§II-C starvation)} *)

(** [run_tasks cpu ~policy ~slices tasks] lets the (untrusted) OS hand
    out [slices] time slices over [(enclave, fn, arg)] work items.
    [`Fair] round-robins; [`Starve name] never schedules that enclave.
    Returns per-enclave completed-slice counts. *)
val run_tasks :
  cpu -> policy:[ `Fair | `Starve of string ] -> slices:int ->
  (enclave * string * string) list -> (string * int) list

(** [epc_range e] is [(base, size)] of the enclave's encrypted memory,
    for physical-attack experiments. *)
val epc_range : enclave -> int * int

(** {2 Monotonic counters}

    Sealing binds data to (CPU, measurement) but carries {e no
    freshness}: the untrusted host can feed an enclave an old sealed
    blob. Hardware monotonic counters, keyed by measurement so they
    survive enclave restarts, are the standard fix — and the
    [cloud-enclave] scenario shows state rollback succeeding without
    them. Callable only from inside the enclave ([ctx]). *)

(** [counter_read ctx] — current value (0 initially). *)
val counter_read : ctx -> int

(** [counter_increment ctx] — bump and return the new value. *)
val counter_increment : ctx -> int

(** Capture live-enclave bookkeeping, the ocall handler, the enclave id
    allocator and the monotonic counters; EPC contents and frames live
    in the machine, captured separately. *)
val take_snapshot : cpu -> unit -> unit

val state_digest : cpu -> Lt_world.Digest64.t
