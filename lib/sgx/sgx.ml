open Lt_crypto
open Lt_hw

let ecall_cost = 10

type cpu = {
  machine : Machine.t;
  master_secret : string;    (* fused; never leaves the package *)
  qe_key : Rsa.keypair;      (* quoting enclave's attestation key *)
  qe_cert : Cert.t;
  mutable ocall_handler : string -> string;
  mutable live : (int, enclave) Hashtbl.t Lazy.t;
  (* per-package, not toplevel globals: a hidden global here would leak
     across world forks (enclave ids feeding MEE keys, monotonic
     counters surviving a restore) and break fork isolation *)
  mutable next_enclave_id : int;
  counters : (string, int) Hashtbl.t;
}

and enclave = {
  e_id : int;
  e_name : string;
  e_measurement : string;
  e_base : int;              (* EPC physical base *)
  e_pages : int list;        (* frames to return on destroy *)
  e_size : int;
  ecall_table : (string, ecall_handler) Hashtbl.t;
  e_cpu : cpu;
  mutable e_alive : bool;
}

and ctx = { enclave : enclave }

and ecall_handler = ctx -> string -> string

let measure_code code = Sha256.digest ("sgx-enclave|" ^ code)

let init_cpu machine rng ~ca_name ~ca_key =
  let master_secret = Drbg.bytes rng 32 in
  Fuse.program machine.Machine.fuses ~name:"sgx-master" ~visibility:Fuse.Secure_only
    master_secret;
  let qe_key = Rsa.generate ~bits:512 rng in
  let qe_cert =
    Cert.issue ~ca_name ~ca_key ~subject:"sgx-quoting-enclave" qe_key.Rsa.pub
  in
  { machine;
    master_secret;
    qe_key;
    qe_cert;
    ocall_handler = (fun _ -> "");
    live = lazy (Hashtbl.create 8);
    next_enclave_id = 0;
    counters = Hashtbl.create 8 }

let quoting_cert cpu = cpu.qe_cert

let mee_key cpu measurement =
  Hkdf.derive ~secret:cpu.master_secret ~salt:"sgx-mee" ~info:measurement 32

let create_enclave cpu ~name ~code ~epc_pages ~ecalls =
  if epc_pages <= 0 then invalid_arg "Sgx.create_enclave: need pages";
  let page = Mmu.page_size in
  match Frame_alloc.alloc_n cpu.machine.Machine.dram_frames epc_pages with
  | None -> invalid_arg "Sgx.create_enclave: out of EPC"
  | Some frames ->
    let sorted = List.sort Stdlib.compare frames in
    let contiguous =
      List.for_all2 (fun p i -> p = List.hd sorted + i) sorted
        (List.init epc_pages (fun i -> i))
    in
    if not contiguous then invalid_arg "Sgx.create_enclave: EPC fragmentation";
    let base = List.hd sorted * page in
    let size = epc_pages * page in
    let measurement = measure_code code in
    cpu.next_enclave_id <- cpu.next_enclave_id + 1;
    (* per-enclave MEE key: OS and physical attackers see only ciphertext *)
    Phys_mem.install_mee cpu.machine.Machine.mem ~base ~size
      ~key:(mee_key cpu (measurement ^ string_of_int cpu.next_enclave_id));
    let table = Hashtbl.create 8 in
    List.iter (fun (fn, h) -> Hashtbl.replace table fn h) ecalls;
    let e =
      { e_id = cpu.next_enclave_id;
        e_name = name;
        e_measurement = measurement;
        e_base = base;
        e_pages = sorted;
        e_size = size;
        ecall_table = table;
        e_cpu = cpu;
        e_alive = true }
    in
    Hashtbl.replace (Lazy.force cpu.live) e.e_id e;
    e

let enclave_name e = e.e_name

let measurement e = e.e_measurement

let destroy cpu e =
  if e.e_alive then begin
    e.e_alive <- false;
    (* retire the MEE first, then scrub the raw frames: real zeros land
       in DRAM without paying a decrypt+re-encrypt per block *)
    Phys_mem.remove_mee cpu.machine.Machine.mem ~base:e.e_base;
    Phys_mem.zero cpu.machine.Machine.mem ~addr:e.e_base ~len:e.e_size;
    List.iter (Frame_alloc.free cpu.machine.Machine.dram_frames) e.e_pages;
    Hashtbl.remove (Lazy.force cpu.live) e.e_id
  end

let ecall cpu e ~fn arg =
  if not e.e_alive then Error "enclave destroyed"
  else
    match Hashtbl.find_opt e.ecall_table fn with
    | None -> Error (Printf.sprintf "no such entry point %S" fn)
    | Some handler ->
      Clock.advance cpu.machine.Machine.clock ecall_cost;
      let result =
        try Ok (handler { enclave = e } arg)
        with exn -> Error (Printexc.to_string exn)
      in
      Clock.advance cpu.machine.Machine.clock ecall_cost;
      result

let set_ocall_handler cpu f = cpu.ocall_handler <- f

let ocall ctx req = ctx.enclave.e_cpu.ocall_handler req

let mem_write ctx ~off data =
  let e = ctx.enclave in
  if off < 0 || off + String.length data > e.e_size then
    invalid_arg "Sgx.mem_write: outside EPC";
  Phys_mem.cpu_write e.e_cpu.machine.Machine.mem ~addr:(e.e_base + off) data

let mem_read ctx ~off ~len =
  let e = ctx.enclave in
  if off < 0 || off + len > e.e_size then invalid_arg "Sgx.mem_read: outside EPC";
  Phys_mem.cpu_read e.e_cpu.machine.Machine.mem ~addr:(e.e_base + off) ~len

let seal_key e =
  Hkdf.derive ~secret:e.e_cpu.master_secret ~salt:"sgx-seal" ~info:e.e_measurement 16

let seal ctx data =
  let e = ctx.enclave in
  let nonce =
    String.sub (Sha256.digest (string_of_int e.e_id ^ data)) 0 Speck.nonce_size
  in
  Speck.Aead.to_wire (Speck.Aead.encrypt ~key:(seal_key e) ~nonce ~ad:"sgx-seal" data)

let unseal ctx wire =
  match Speck.Aead.of_wire wire with
  | None -> None
  | Some box -> Speck.Aead.decrypt ~key:(seal_key ctx.enclave) ~ad:"sgx-seal" box

let cache_touch ctx addr =
  let e = ctx.enclave in
  ignore (Cache.access e.e_cpu.machine.Machine.cache ~domain:e.e_name ~addr)

type quote = {
  q_measurement : string;
  q_nonce : string;
  q_report_data : string;
  q_signature : string;
}

let quote_body ~measurement ~nonce ~report_data =
  Printf.sprintf "sgx-quote|%s|%s|%s" (Sha256.hex measurement) nonce report_data

let quote cpu e ~nonce ~report_data =
  { q_measurement = e.e_measurement;
    q_nonce = nonce;
    q_report_data = report_data;
    q_signature =
      Rsa.sign cpu.qe_key
        (quote_body ~measurement:e.e_measurement ~nonce ~report_data) }

let qe_sign cpu ~body = Rsa.sign cpu.qe_key body

let verify_quote ~qe_pub q =
  Rsa.verify qe_pub ~signature:q.q_signature
    (quote_body ~measurement:q.q_measurement ~nonce:q.q_nonce
       ~report_data:q.q_report_data)

let run_tasks cpu ~policy ~slices tasks =
  let progress = Hashtbl.create 8 in
  List.iter (fun (e, _, _) -> Hashtbl.replace progress e.e_name 0) tasks;
  let eligible =
    match policy with
    | `Fair -> tasks
    | `Starve victim -> List.filter (fun (e, _, _) -> e.e_name <> victim) tasks
  in
  let n = List.length eligible in
  if n > 0 then
    for i = 0 to slices - 1 do
      let e, fn, arg = List.nth eligible (i mod n) in
      match ecall cpu e ~fn arg with
      | Ok _ ->
        Hashtbl.replace progress e.e_name
          (1 + Option.value ~default:0 (Hashtbl.find_opt progress e.e_name))
      | Error _ -> ()
    done
  else
    (* nothing runnable: the OS idles, time still passes *)
    Clock.advance cpu.machine.Machine.clock slices;
  Hashtbl.fold (fun name c acc -> (name, c) :: acc) progress []
  |> List.sort Stdlib.compare

let epc_range e = (e.e_base, e.e_size)

(* monotonic counters persist per (cpu, measurement) across enclave
   restarts, as the platform service does *)
let counter_key e = e.e_measurement

let counter_read ctx =
  let e = ctx.enclave in
  Option.value ~default:0 (Hashtbl.find_opt e.e_cpu.counters (counter_key e))

let counter_increment ctx =
  let e = ctx.enclave in
  let v = counter_read ctx + 1 in
  Hashtbl.replace e.e_cpu.counters (counter_key e) v;
  v

(* --- Snapshottable ---------------------------------------------------- *)

(* enclave records are mutable only in [e_alive]; EPC contents and the
   frame allocator live in the machine, captured separately *)
let take_snapshot cpu =
  let live = Lazy.force cpu.live in
  let bindings = Lt_world.Snapshottable.save_hashtbl live in
  let alive = Hashtbl.fold (fun _ e acc -> (e, e.e_alive) :: acc) live [] in
  let ocall = cpu.ocall_handler in
  let next_id = cpu.next_enclave_id in
  let counters = Lt_world.Snapshottable.save_hashtbl cpu.counters in
  fun () ->
    bindings ();
    List.iter (fun (e, a) -> e.e_alive <- a) alive;
    cpu.ocall_handler <- ocall;
    cpu.next_enclave_id <- next_id;
    counters ()

let state_digest cpu =
  let open Lt_world in
  Digest64.int Digest64.basis cpu.next_enclave_id
  |> Snapshottable.digest_hashtbl ~key:string_of_int
       ~value:(fun e ->
         Printf.sprintf "%s|%s|%d|%b" e.e_name e.e_measurement e.e_base e.e_alive)
       (Lazy.force cpu.live)
  |> Snapshottable.digest_hashtbl ~key:Fun.id ~value:string_of_int cpu.counters
