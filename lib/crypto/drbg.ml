type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: good avalanche, passes BigCrush when driven by a
   Weyl sequence, which is all the determinism we need here. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let uint64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Drbg.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (uint64 t) mask) in
  v mod bound

let bool t = Int64.logand (uint64 t) 1L = 1L

let float t =
  let v = Int64.shift_right_logical (uint64 t) 11 in
  Int64.to_float v /. 9007199254740992.0 (* 2^53 *)

let bytes t n =
  let b = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let v = ref (uint64 t) in
    let k = min 8 (n - !i) in
    for j = 0 to k - 1 do
      Bytes.set b (!i + j) (Char.chr (Int64.to_int (Int64.logand !v 0xFFL)));
      v := Int64.shift_right_logical !v 8
    done;
    i := !i + k
  done;
  Bytes.unsafe_to_string b

let split t =
  let seed = uint64 t in
  { state = mix seed }

(* canonical per-index derivation that does NOT advance [t]: stream [i]
   depends only on (current state, i), so a pool of N tenants and a pool
   of 10N tenants give byte-identical streams for the shared prefix *)
let substream t i =
  let z = Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) golden_gamma) in
  { state = mix (mix z) }

let save t = t.state

let restore t s = t.state <- s
