(** Deterministic random bit generator.

    Every source of randomness in the simulation flows through a [Drbg.t]
    seeded explicitly, so that scenarios, tests and benchmarks are fully
    reproducible. The generator is splitmix64; it is *not*
    cryptographically strong and is documented as such in DESIGN.md. *)

type t

(** [create seed] returns a fresh generator determined by [seed]. *)
val create : int64 -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [uint64 t] is the next raw 64-bit output. *)
val uint64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)
val int : t -> int -> int

(** [bool t] is a uniform coin flip. *)
val bool : t -> bool

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [bytes t n] is an [n]-byte random string. *)
val bytes : t -> int -> string

(** [split t] derives a new, statistically independent generator and
    advances [t]. Use to hand sub-systems their own stream. *)
val split : t -> t

(** [substream t i] derives stream [i] from [t]'s current state {e
    without advancing it}: a pure function of [(save t, i)]. This is the
    canonical per-tenant split — because deriving stream [i] is
    independent of how many other streams exist, a run over 100 tenants
    and a run over 1000 give byte-identical traffic for the 100 shared
    tenants. [i] must be non-negative. *)
val substream : t -> int -> t

(** [save t] / [restore t s] expose the raw state word so world
    snapshots can rewind a generator without copying it. *)
val save : t -> int64

val restore : t -> int64 -> unit
