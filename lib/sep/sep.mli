(** Apple-style Secure Enclave Processor (§II-B).

    A dedicated coprocessor beside the application CPU: it runs its own
    L4-style kernel, owns a private slice of DRAM accessed through
    inline encryption, and talks to the application processor only over
    a narrow mailbox. Compared to TrustZone this buys:
    - resistance to physical memory attacks (inline DRAM encryption);
    - reduced side channels (no shared cache with the application CPU —
      SEP services never touch the machine's {!Lt_hw.Cache});
    but it stays inflexible: exactly two environments, services fixed at
    integration time ("essentially an on-device HSM").

    The per-device UID key is fused at manufacture and readable only by
    the SEP kernel. *)

type t

type ctx

type handler = ctx -> string -> string

(** [attach machine rng ~private_pages] integrates a SEP: carves its
    private encrypted DRAM, fuses the UID key, boots the SEP kernel. *)
val attach : Lt_hw.Machine.t -> Lt_crypto.Drbg.t -> private_pages:int -> t

(** [register_service t ~name handler] — services are fixed by the
    integrator; there is no runtime code loading on a SEP. *)
val register_service : t -> name:string -> handler -> unit

(** [mailbox_call t ~service req] is the application CPU's only way in.
    Charges mailbox round-trip ticks. *)
val mailbox_call : t -> service:string -> string -> (string, string) result

val mailbox_count : t -> int

(** [private_range t] is [(base, size)] of the encrypted region. *)
val private_range : t -> int * int

(** [provisioning_record t] is the manufacture-time copy of the UID key
    that the device maker retains in its verification database — how a
    remote party can check SEP-backed attestation tags. Not accessible
    to software on the device. *)
val provisioning_record : t -> string

(** {2 Inside the SEP (for handlers)} *)

(** [uid_key ctx] is the fused per-device secret — never exported. *)
val uid_key : ctx -> string

(** [store ctx ~key data] / [load ctx ~key] persist into the SEP's
    private DRAM (physically ciphertext on the bus). *)
val store : ctx -> key:string -> string -> unit

val load : ctx -> key:string -> string option

(** [derive ctx ~info len] derives key material from the UID key —
    the primitive behind per-file keys, passcode entanglement, etc. *)
val derive : ctx -> info:string -> int -> string

(** Capture services, the protected KV store and the mailbox counter;
    the returned thunk restores them.  The machine (including the
    MEE-encrypted DRAM slice) is captured separately. *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
