open Lt_crypto
open Lt_hw

let mailbox_cost = 40

type t = {
  machine : Machine.t;
  base : int;
  size : int;
  uid : string;
  services : (string, handler) Hashtbl.t;
  kv : (string * string, string) Hashtbl.t;
  mutable calls : int;
}

and ctx = { sep : t; svc : string }

and handler = ctx -> string -> string

let attach machine rng ~private_pages =
  let page = Mmu.page_size in
  match Frame_alloc.alloc_n machine.Machine.dram_frames private_pages with
  | None -> invalid_arg "Sep.attach: not enough DRAM"
  | Some frames ->
    let sorted = List.sort Stdlib.compare frames in
    let contiguous =
      List.for_all2 (fun p i -> p = List.hd sorted + i) sorted
        (List.init private_pages (fun i -> i))
    in
    if not contiguous then invalid_arg "Sep.attach: non-contiguous frames";
    let base = List.hd sorted * page in
    let size = private_pages * page in
    let uid = Drbg.bytes rng 32 in
    Fuse.program machine.Machine.fuses ~name:"sep-uid" ~visibility:Fuse.Secure_only uid;
    (* inline encryption between SEP and its DRAM slice *)
    Phys_mem.install_mee machine.Machine.mem ~base ~size
      ~key:(Hkdf.derive ~secret:uid ~salt:"sep-inline" ~info:"dram" 32);
    (* the slice is also invisible to the application CPU's software *)
    Bus.mark_secure machine.Machine.bus ~base ~size;
    { machine;
      base;
      size;
      uid;
      services = Hashtbl.create 8;
      kv = Hashtbl.create 16;
      calls = 0 }

let register_service t ~name handler = Hashtbl.replace t.services name handler

let flush_store t =
  let buf = Buffer.create 256 in
  Hashtbl.iter
    (fun (svc, key) v ->
      Buffer.add_string buf
        (Printf.sprintf "%03d%s%03d%s%06d%s" (String.length svc) svc
           (String.length key) key (String.length v) v))
    t.kv;
  let data = Buffer.contents buf in
  if String.length data > t.size then invalid_arg "Sep: private store overflow";
  (* SEP-side write: lands in DRAM through the inline encryption engine *)
  Phys_mem.cpu_write t.machine.Machine.mem ~addr:t.base data

let mailbox_call t ~service req =
  match Hashtbl.find_opt t.services service with
  | None -> Error (Printf.sprintf "sep: unknown service %S" service)
  | Some handler ->
    t.calls <- t.calls + 1;
    Clock.advance t.machine.Machine.clock mailbox_cost;
    let result =
      try Ok (handler { sep = t; svc = service } req)
      with exn -> Error (Printexc.to_string exn)
    in
    Clock.advance t.machine.Machine.clock mailbox_cost;
    result

let mailbox_count t = t.calls

let private_range t = (t.base, t.size)

let provisioning_record t = t.uid

let uid_key ctx = ctx.sep.uid

let store ctx ~key data =
  Hashtbl.replace ctx.sep.kv (ctx.svc, key) data;
  flush_store ctx.sep

let load ctx ~key = Hashtbl.find_opt ctx.sep.kv (ctx.svc, key)

let derive ctx ~info len = Hkdf.derive ~secret:ctx.sep.uid ~salt:"sep-derive" ~info len

(* --- Snapshottable ---------------------------------------------------- *)

let take_snapshot t =
  let services = Lt_world.Snapshottable.save_hashtbl t.services in
  let kv = Lt_world.Snapshottable.save_hashtbl t.kv in
  let calls = t.calls in
  fun () ->
    services ();
    kv ();
    t.calls <- calls

let state_digest t =
  let open Lt_world in
  Digest64.string Digest64.basis t.uid
  |> Snapshottable.digest_hashtbl ~key:(fun (s, k) -> s ^ "\x00" ^ k) ~value:Fun.id
       t.kv
  |> Snapshottable.digest_hashtbl ~key:Fun.id ~value:(fun _ -> "") t.services
  |> Fun.flip Digest64.int t.calls
