module Block = Lt_storage.Block
module Fs = Lt_storage.Legacy_fs
module Vpfs = Lt_storage.Vpfs
module Drbg = Lt_crypto.Drbg

let name = "storage"

let master_key = "hunt-key"

(* big enough that a well-formed schedule never hits No_space (a failed
   mutation could leave a journal record behind and confuse the
   in-flight accounting), small enough that corrupt ops regularly land
   on live metadata *)
let device_blocks = 128

(* ---------------------------------------------------------------- *)
(* operations                                                        *)
(* ---------------------------------------------------------------- *)

type op =
  | Write of string * string
  | Delete of string
  | Cut of int
  | Corrupt of { block : int; byte : int; bit : int }
  | Remount

let parse_op line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "write"; path; data ] -> Ok (Write (path, data))
  | [ "delete"; path ] -> Ok (Delete path)
  | [ "cut"; n ] ->
    (match int_of_string_opt n with
     | Some n when n >= 0 -> Ok (Cut n)
     | _ -> Error (Printf.sprintf "bad cut %S" line))
  | [ "corrupt"; block; byte; bit ] ->
    (match (int_of_string_opt block, int_of_string_opt byte, int_of_string_opt bit) with
     | Some block, Some byte, Some bit
       when block >= 0 && byte >= 0 && byte < Block.block_size && bit >= 0 && bit < 8 ->
       Ok (Corrupt { block; byte; bit })
     | _ -> Error (Printf.sprintf "bad corrupt %S" line))
  | [ "remount" ] -> Ok Remount
  | _ -> Error (Printf.sprintf "unparseable op %S" line)

let render_op = function
  | Write (path, data) -> Printf.sprintf "write %s %s" path data
  | Delete path -> Printf.sprintf "delete %s" path
  | Cut n -> Printf.sprintf "cut %d" n
  | Corrupt { block; byte; bit } -> Printf.sprintf "corrupt %d %d %d" block byte bit
  | Remount -> "remount"

(* ---------------------------------------------------------------- *)
(* the harness                                                       *)
(* ---------------------------------------------------------------- *)

type pending = Pwrite of string * string | Pdelete of string

type state = {
  dev : Block.t;
  mutable fs : Fs.t;
  mutable vpfs : Vpfs.t;
  mutable root : string;              (* last acknowledged trusted root *)
  model : (string, string) Hashtbl.t; (* acknowledged contents *)
  mutable pending : pending option;   (* mutation in flight at a power cut *)
  mutable queued_flips : (int * int * int) list;
      (* corruption strikes the at-rest image: queued flips land after
         the sync and before the mount of the next remount, where the
         old decode paths used to panic *)
  mutable corrupted : bool;           (* oracle off, totality still on *)
  mutable dead : bool;                (* a corrupt image refused to mount *)
  mutable failure : string option;
}

let fail st fmt =
  Printf.ksprintf (fun s -> if st.failure = None then st.failure <- Some s) fmt

let exn_to_failure st what exn =
  fail st "%s raised %s" what (Printexc.to_string exn)

(* After every recovery, reading everything back must be total — on a
   damaged image a read may return [Error _], never raise. On an
   undamaged image the survivors must additionally be exactly the
   model. *)
let audit st =
  match Vpfs.list st.vpfs with
  | exception exn -> exn_to_failure st "list" exn
  | paths ->
    let actual =
      List.map
        (fun p ->
          match Vpfs.read st.vpfs p with
          | Ok d -> (p, Some d)
          | Error _ -> (p, None)
          | exception exn ->
            exn_to_failure st "read" exn;
            (p, None))
        paths
    in
    if not st.corrupted then begin
      let expect =
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.model [])
      in
      let actual_ok =
        List.filter_map (fun (p, d) -> Option.map (fun d -> (p, d)) d) actual
        |> List.sort compare
      in
      if List.exists (fun (_, d) -> d = None) actual then
        fail st "read of a surviving path errored on a clean image"
      else if actual_ok <> expect then
        fail st "oracle divergence: survivors %s, acknowledged %s"
          (String.concat "," (List.map fst actual_ok))
          (String.concat "," (List.map fst expect))
    end

(* remount after a power cut (no sync possible: the handle is dead) or
   cleanly (sync first). The status resolves the in-flight mutation:
   [`Recovered] rolled it forward, [`Clean] discarded it. *)
(* A corruption strikes the [byte]-th non-zero byte of the block — live
   content, not zero padding. Digits rotate to a different digit (the
   dangerous mutation for length-and-index fields: the result still
   parses, but means something else); other bytes get a bit flip.
   Deterministic given the image, so reproducers stay exact. *)
let apply_flips st =
  List.iter
    (fun (block, byte, bit) ->
      let block = block mod Block.blocks st.dev in
      match Block.read st.dev block with
      | exception exn -> exn_to_failure st "corrupt read" exn
      | contents ->
        let b = Bytes.of_string contents in
        let nonzero = ref [] in
        Bytes.iteri (fun i c -> if c <> '\000' then nonzero := i :: !nonzero) b;
        let i =
          match List.rev !nonzero with
          | [] -> byte
          | live -> List.nth live (byte mod List.length live)
        in
        let c = Bytes.get b i in
        let c' =
          if c >= '0' && c <= '9' then
            Char.chr
              (Char.code '0' + (Char.code c - Char.code '0' + 1 + bit) mod 10)
          else Char.chr (Char.code c lxor (1 lsl bit))
        in
        Bytes.set b i c';
        (match Block.write st.dev block (Bytes.to_string b) with
         | () -> st.corrupted <- true
         | exception exn -> exn_to_failure st "corrupt write" exn))
    st.queued_flips;
  st.queued_flips <- []

let remount st ~after_cut =
  if not after_cut then begin
    match Fs.sync st.fs with
    | () -> ()
    | exception Fs.Crashed -> ()  (* a cut armed but never fired; treat as cut *)
    | exception exn -> exn_to_failure st "sync" exn
  end;
  apply_flips st;
  if st.failure = None then
    match Fs.mount st.dev with
    | exception exn -> exn_to_failure st "mount" exn
    | Error _ when st.corrupted -> st.dead <- true  (* detected damage: fine *)
    | Error e ->
      fail st "clean image refused to mount: %s" (Format.asprintf "%a" Fs.pp_error e)
    | Ok fs' ->
      (match Vpfs.open_recover ~master_key ~expected_root:st.root fs' with
       | exception exn -> exn_to_failure st "open_recover" exn
       | Error _ when st.corrupted -> st.dead <- true
       | Error e ->
         fail st "clean image refused recovery: %s"
           (Format.asprintf "%a" Vpfs.pp_error e)
       | Ok (v', status) ->
         st.fs <- fs';
         st.vpfs <- v';
         (match (status, st.pending) with
          | `Recovered, Some (Pwrite (p, d)) -> Hashtbl.replace st.model p d
          | `Recovered, Some (Pdelete p) -> Hashtbl.remove st.model p
          | `Recovered, None ->
            if not st.corrupted then fail st "recovered with nothing in flight"
          | `Clean, _ -> ());
         st.pending <- None;
         st.root <- Vpfs.root st.vpfs;
         audit st)

let run_op st op =
  match op with
  | Cut n ->
    (match Fs.crash_after_writes st.fs n with
     | () -> ()
     | exception Fs.Crashed -> remount st ~after_cut:true
     | exception exn -> exn_to_failure st "cut" exn)
  | Corrupt { block; byte; bit } ->
    st.queued_flips <- st.queued_flips @ [ (block, byte, bit) ]
  | Remount -> remount st ~after_cut:false
  | Write (path, data) ->
    st.pending <- Some (Pwrite (path, data));
    (match Vpfs.write st.vpfs path data with
     | Ok () ->
       Hashtbl.replace st.model path data;
       st.root <- Vpfs.root st.vpfs;
       st.pending <- None
     | Error _ ->
       (* a typed refusal (no space, detected damage) is not an ack *)
       st.pending <- None
     | exception Fs.Crashed -> remount st ~after_cut:true
     | exception exn -> exn_to_failure st "write" exn)
  | Delete path ->
    st.pending <- Some (Pdelete path);
    (match Vpfs.delete st.vpfs path with
     | Ok () ->
       Hashtbl.remove st.model path;
       st.root <- Vpfs.root st.vpfs;
       st.pending <- None
     | Error _ -> st.pending <- None
     | exception Fs.Crashed -> remount st ~after_cut:true
     | exception exn -> exn_to_failure st "delete" exn)

let run_ops ops =
  let dev = Block.create ~blocks:device_blocks in
  let fs = Fs.format dev in
  let vpfs = Vpfs.create ~master_key fs in
  let st =
    { dev; fs; vpfs; root = Vpfs.root vpfs; model = Hashtbl.create 8;
      pending = None; queued_flips = []; corrupted = false; dead = false;
      failure = None }
  in
  List.iter (fun op -> if st.failure = None && not st.dead then run_op st op) ops;
  (* end-of-run audit, mirroring the chaos harness: the image must be
     recoverable and faithful even if the last cut never got a
     follow-up operation *)
  if st.failure = None && not st.dead then remount st ~after_cut:false;
  match st.failure with None -> Ok () | Some what -> Error what

(* ---------------------------------------------------------------- *)
(* engine interface                                                  *)
(* ---------------------------------------------------------------- *)

let check payload =
  let lines =
    String.split_on_char '\n' payload
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      (match parse_op line with
       | Ok op -> parse (op :: acc) rest
       | Error e -> Error e)
  in
  match parse [] lines with
  | Error e -> Error (Printf.sprintf "bad payload: %s" e)
  | Ok ops -> (try run_ops ops with exn ->
      Error (Printf.sprintf "harness raised %s" (Printexc.to_string exn)))

let path_pool = [| "/a"; "/b"; "/c"; "/d"; "/deep/e" |]

let pick rng a = a.(Drbg.int rng (Array.length a))

let gen_data rng =
  let n = 1 + Drbg.int rng 40 in
  String.init n (fun _ -> "abcdefghijklmnopqrstuvwxyz0123456789".[Drbg.int rng 36])

let generate rng _case =
  let n = 6 + Drbg.int rng 12 in
  let ops =
    List.init n (fun _ ->
        match Drbg.int rng 11 with
        | 0 -> Delete (pick rng path_pool)
        | 1 -> Cut (Drbg.int rng 9)
        | 2 | 3 ->
          (* the superblock is block 0 and the directory starts at
             block 1; aim there most of the time so the strike lands on
             a decoder's input rather than in zero padding *)
          let block =
            if Drbg.int rng 8 < 6 then 1 + Drbg.int rng 2
            else Drbg.int rng device_blocks
          in
          Corrupt
            { block; byte = Drbg.int rng Block.block_size; bit = Drbg.int rng 8 }
        | 4 -> Remount
        | _ -> Write (pick rng path_pool, gen_data rng))
  in
  String.concat "\n" (List.map render_op ops)
