open Lateral
module Drbg = Lt_crypto.Drbg

let name = "manifest"

(* ---------------------------------------------------------------- *)
(* generation: a well-formed manifest set, rendered, then mutated    *)
(* ---------------------------------------------------------------- *)

let name_pool = [| "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta" |]

let service_pool = [| "ping"; "store"; "query"; "render"; "io" |]

let substrate_pool =
  [| "microkernel"; "sgx"; "trustzone"; "sep"; "cheri"; "m3"; "flicker" |]

let pick rng a = a.(Drbg.int rng (Array.length a))

let host_pool = [| "edge-1"; "edge-2"; "core-1"; "lab"; "ghost" |]

(* selectors from every registry kind, valid and not: hosts that may or
   may not be declared, classes the taxonomy may not know, substrates *)
let selector_pool =
  [| "class:tee"; "class:commodity"; "class:enclave"; "host:edge-1";
     "host:ghost"; "sgx"; "sep"; "microkernel"; "qemu" |]

let gen_hosts rng =
  let n = Drbg.int rng 4 in
  List.init n (fun i ->
      { Manifest.h_name = host_pool.(i);
        h_substrates =
          List.filter (fun _ -> Drbg.int rng 2 = 0)
            (Array.to_list substrate_pool) })

let gen_placement rng =
  List.filter (fun _ -> Drbg.int rng 4 = 0) (Array.to_list selector_pool)

(* nestable trust-domain paths (Tyche-style); adjacent components with
   unrelated paths force the printer through every open/close shape,
   and the round-trip property must survive all of them *)
let trust_pool =
  [| []; [ "tenant-a" ]; [ "tenant-b" ]; [ "tenant-a"; "edge" ];
     [ "tenant-a"; "edge"; "inner" ]; [ "shard-0"; "tenant-a" ] |]

let gen_manifests rng =
  let n = 1 + Drbg.int rng 5 in
  let names = Array.to_list (Array.sub name_pool 0 n) in
  List.mapi
    (fun i cname ->
      let provides =
        List.filter (fun _ -> Drbg.int rng 3 > 0)
          (Array.to_list service_pool)
        |> List.filteri (fun j _ -> j < 2)
      in
      let provides = if provides = [] then [ pick rng service_pool ] else provides in
      (* connect only to earlier components: generated sets are acyclic *)
      let connects_to =
        List.concat_map
          (fun j ->
            if j < i && Drbg.bool rng then
              [ Manifest.conn
                  ~vetted:(Drbg.int rng 4 = 0)
                  (List.nth names j)
                  (pick rng service_pool) ]
            else [])
          (List.init n Fun.id)
      in
      let restart =
        if Drbg.int rng 3 = 0 then
          Some (Manifest.default_restart
                  (pick rng [| Manifest.Never; Manifest.On_failure; Manifest.Always |]))
        else None
      in
      Manifest.v ~name:cname ~provides ~connects_to
        ~placement:(gen_placement rng)
        ?domain:(if Drbg.int rng 4 = 0 then Some "shared" else None)
        ~size_loc:(100 + Drbg.int rng 40_000)
        ~network_facing:(Drbg.int rng 3 = 0)
        ~vulnerable:(Drbg.int rng 4 = 0)
        ~discriminates_clients:(Drbg.int rng 4 > 0)
        ~substrate:(pick rng substrate_pool)
        ~stateful:(Drbg.int rng 3 = 0)
        ~trust_domain:(pick rng trust_pool)
        ?restart ())
    names

let printable rng =
  (* bias toward the format's own alphabet so mutations stay near the
     grammar's edge instead of being trivially rejected *)
  let interesting = "component provides connects domain end substrate host place class: \t#.-_" in
  if Drbg.int rng 2 = 0 then interesting.[Drbg.int rng (String.length interesting)]
  else Char.chr (32 + Drbg.int rng 95)

let mutate rng text =
  let mutations = Drbg.int rng 5 in
  let apply text _ =
    if String.length text = 0 then text
    else
      match Drbg.int rng 5 with
      | 0 ->
        (* flip one byte *)
        let i = Drbg.int rng (String.length text) in
        let b = Bytes.of_string text in
        Bytes.set b i (printable rng);
        Bytes.to_string b
      | 1 ->
        (* drop a line *)
        let lines = String.split_on_char '\n' text in
        let i = Drbg.int rng (List.length lines) in
        String.concat "\n" (List.filteri (fun j _ -> j <> i) lines)
      | 2 ->
        (* duplicate a line (duplicate components must be rejected) *)
        let lines = String.split_on_char '\n' text in
        let i = Drbg.int rng (List.length lines) in
        let line = List.nth lines i in
        String.concat "\n"
          (List.concat (List.mapi (fun j l -> if j = i then [ l; line ] else [ l ]) lines))
      | 3 ->
        (* truncate mid-token *)
        String.sub text 0 (Drbg.int rng (String.length text))
      | _ ->
        (* insert a random token at a line start *)
        let lines = String.split_on_char '\n' text in
        let i = Drbg.int rng (List.length lines) in
        let token = String.init (1 + Drbg.int rng 12) (fun _ -> printable rng) in
        String.concat "\n"
          (List.mapi (fun j l -> if j = i then token ^ " " ^ l else l) lines)
  in
  List.fold_left apply text (List.init mutations Fun.id)

let garbage rng =
  String.init (Drbg.int rng 400) (fun _ ->
      if Drbg.int rng 12 = 0 then '\n' else printable rng)

let generate rng _case =
  if Drbg.int rng 4 = 0 then garbage rng
  else if Drbg.bool rng then
    mutate rng (Manifest_file.fleet_to_text (gen_manifests rng, gen_hosts rng))
  else mutate rng (Manifest_file.to_text (gen_manifests rng))

(* ---------------------------------------------------------------- *)
(* the properties                                                    *)
(* ---------------------------------------------------------------- *)

let raised what exn =
  Error (Printf.sprintf "%s raised %s" what (Printexc.to_string exn))

let check payload =
  match Manifest_file.parse_fleet payload with
  | exception exn -> raised "parse_fleet" exn
  | Error _ ->
    (* rejection is totality working; but the other parsers must agree *)
    (match Manifest_file.parse payload with
     | exception exn -> raised "parse" exn
     | Ok _ -> Error "parse accepted what parse_fleet rejected"
     | Error _ ->
       (match Manifest_file.parse_spanned payload with
        | exception exn -> raised "parse_spanned" exn
        | Ok _ -> Error "parse rejected what parse_spanned accepted"
        | Error _ -> Ok ()))
  | Ok (manifests, hosts) ->
    (* the host-dropping parser must see the same components *)
    (match Manifest_file.parse payload with
     | exception exn -> raised "parse" exn
     | Error e ->
       Error (Printf.sprintf "parse rejected what parse_fleet accepted: %s" e)
     | Ok dropped when dropped <> manifests ->
       Error "parse and parse_fleet disagree on the components"
     | Ok _ ->
       (match Manifest_file.fleet_to_text (manifests, hosts) with
        | exception exn -> raised "fleet_to_text" exn
        | text ->
          (match Manifest_file.parse_fleet text with
           | exception exn -> raised "round-trip parse_fleet" exn
           | Error e -> Error (Printf.sprintf "round-trip parse failed: %s" e)
           | Ok reparsed when reparsed <> (manifests, hosts) ->
             Error "round-trip changed the fleet"
           | Ok _ ->
          (match Lint.run manifests with
           | exception exn -> raised "lint" exn
           | diags ->
             if Lint.run manifests <> diags then Error "lint is nondeterministic"
             else
               (match Flow.analyze manifests with
                | exception exn -> raised "flow" exn
                | flow ->
                  if Flow.analyze manifests <> flow then
                    Error "flow analysis is nondeterministic"
                  else
                    (match Flow.provision manifests with
                     | exception exn -> raised "provision" exn
                     | Error _ -> Ok ()  (* a typed refusal to provision is fine *)
                     | Ok d ->
                       (match Flow.conformance manifests d.Flow.d_kernel with
                        | exception exn -> raised "conformance" exn
                        | _ -> Ok ())))))))
