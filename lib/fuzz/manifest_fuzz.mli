(** Engine 1: manifest toolchain fuzzing.

    Feeds generated and mutated manifest source text to the parser and,
    on whatever parses, to the static analyses. The properties:

    - {b parser totality}: {!Lateral.Manifest_file.parse} never raises;
      rejected inputs come back as [Error _] with a line number;
    - {b round-trip}: [parse text |> to_text |> parse] succeeds and
      yields the same manifests;
    - {b analysis totality and determinism}: {!Lateral.Lint.run},
      {!Lateral.Flow.analyze} and {!Lateral.Flow.provision} +
      {!Lateral.Flow.conformance} never raise and give identical answers
      on identical inputs.

    Payload = the manifest source text itself. *)

val name : string

(** [generate rng case] — a fresh payload: usually a well-formed
    manifest set pushed through 0..4 mutations (byte flips, line drops
    and duplications, token truncation), sometimes raw printable
    garbage. *)
val generate : Lt_crypto.Drbg.t -> int -> string

(** [check payload] — [Ok ()] when every property holds (a clean
    [Error _] from the parser counts as holding); [Error what]
    otherwise. Never raises. *)
val check : string -> (unit, string) result
