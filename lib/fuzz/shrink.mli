(** Delta-debugging shrinker for line-structured payloads.

    All three engines take payloads that are independent(ish) lines —
    manifest directives, operation scripts — so one ddmin-style pass
    over lines gets reproducers close to minimal. *)

(** [lines ?steps still_fails payload] returns the smallest payload
    (by removing line chunks, then single lines, then truncating the
    longest lines) for which [still_fails] stays [true]. [still_fails
    payload] must be [true] on entry; [steps] counts predicate
    evaluations for the benchmark. *)
val lines : ?steps:int ref -> (string -> bool) -> string -> string
