open Lateral
module Drbg = Lt_crypto.Drbg

let name = "analysis"

(* ---------------------------------------------------------------- *)
(* generation: a delta script, usually well-formed, then mutated     *)
(* ---------------------------------------------------------------- *)

let name_pool = [| "alpha"; "beta"; "gamma"; "delta"; "epsilon" |]

let service_pool = [| "ping"; "store"; "query"; "io" |]

let substrate_pool =
  [| "microkernel"; "sgx"; "sep"; "trustzone"; "monolithic-os"; "cheri" |]

let pick rng a = a.(Drbg.int rng (Array.length a))

(* a component aimed at the rule families: sometimes tainted, sometimes
   a secret holder, sometimes legacy and oversized, channels allowed to
   dangle (the linter reports those, the engine must not trip on them) *)
let gen_manifest rng cname =
  let connects_to =
    List.concat_map
      (fun target ->
        if target <> cname && Drbg.int rng 3 = 0 then
          [ Manifest.conn
              ~vetted:(Drbg.int rng 4 = 0)
              target (pick rng service_pool) ]
        else [])
      (Array.to_list name_pool)
  in
  Manifest.v ~name:cname
    ~provides:[ pick rng service_pool ]
    ~connects_to
    ?domain:(if Drbg.int rng 4 = 0 then Some "shared" else None)
    ~size_loc:(100 + Drbg.int rng 40_000)
    ~network_facing:(Drbg.int rng 3 = 0)
    ~vulnerable:(Drbg.int rng 4 = 0)
    ~discriminates_clients:(Drbg.int rng 4 > 0)
    ~substrate:(pick rng substrate_pool)
    ()

let gen_delta rng =
  let caller = pick rng name_pool in
  let other () =
    (* parse_script rejects self-connections, so steer away from them
       in the well-formed stream; mutations reintroduce them *)
    let t = ref (pick rng name_pool) in
    while !t = caller do
      t := pick rng name_pool
    done;
    !t
  in
  match Drbg.int rng 5 with
  | 0 -> Delta.Add (gen_manifest rng (pick rng name_pool))
  | 1 -> Delta.Remove (pick rng name_pool)
  | 2 ->
    Delta.Connect
      { caller;
        conn =
          Manifest.conn ~vetted:(Drbg.int rng 4 = 0) (other ())
            (pick rng service_pool) }
  | 3 ->
    Delta.Disconnect
      { caller; target = other (); service = pick rng service_pool }
  | _ ->
    Delta.Set_vetted
      { caller; target = other (); service = pick rng service_pool;
        vetted = Drbg.bool rng }

let gen_script rng =
  let n = 1 + Drbg.int rng 12 in
  Delta.to_text (List.init n (fun _ -> gen_delta rng))

let printable rng =
  let interesting = "add update remove connect disconnect vet unvet \t#.-_" in
  if Drbg.int rng 2 = 0 then
    interesting.[Drbg.int rng (String.length interesting)]
  else Char.chr (32 + Drbg.int rng 95)

let mutate rng text =
  let mutations = Drbg.int rng 4 in
  let apply text _ =
    if String.length text = 0 then text
    else
      match Drbg.int rng 4 with
      | 0 ->
        let i = Drbg.int rng (String.length text) in
        let b = Bytes.of_string text in
        Bytes.set b i (printable rng);
        Bytes.to_string b
      | 1 ->
        let lines = String.split_on_char '\n' text in
        let i = Drbg.int rng (List.length lines) in
        String.concat "\n" (List.filteri (fun j _ -> j <> i) lines)
      | 2 -> String.sub text 0 (Drbg.int rng (String.length text))
      | _ ->
        let lines = String.split_on_char '\n' text in
        let i = Drbg.int rng (List.length lines) in
        let token =
          String.init (1 + Drbg.int rng 10) (fun _ -> printable rng)
        in
        String.concat "\n"
          (List.mapi (fun j l -> if j = i then token ^ " " ^ l else l) lines)
  in
  List.fold_left apply text (List.init mutations Fun.id)

let garbage rng =
  String.init (Drbg.int rng 300) (fun _ ->
      if Drbg.int rng 10 = 0 then '\n' else printable rng)

let generate rng _case =
  if Drbg.int rng 5 = 0 then garbage rng
  else
    let script = gen_script rng in
    if Drbg.int rng 3 = 0 then mutate rng script else script

(* ---------------------------------------------------------------- *)
(* the properties                                                    *)
(* ---------------------------------------------------------------- *)

let raised what exn =
  Error (Printf.sprintf "%s raised %s" what (Printexc.to_string exn))

let check payload =
  match Delta.parse_script payload with
  | exception exn -> raised "parse_script" exn
  | Error _ ->
    (* rejection is totality working *)
    Ok ()
  | Ok deltas ->
    (match Delta.parse_script (Delta.to_text deltas) with
     | exception exn -> raised "round-trip parse" exn
     | Error e -> Error (Printf.sprintf "round-trip parse failed: %s" e)
     | Ok reparsed when reparsed <> deltas ->
       Error "round-trip changed the deltas"
     | Ok _ ->
       (* replay from an empty fleet: the script's own adds build it.
          After every step the incremental state must be byte-identical
          to a from-scratch Lint.run + Flow.analyze, and the maintained
          kernel must conform to the surviving fleet *)
       let rec drive i st = function
         | [] -> Ok ()
         | d :: rest ->
           (match Check.apply d st with
            | exception exn ->
              raised (Printf.sprintf "apply step %d (%s)" i (Delta.describe d))
                exn
            | st, _ ->
              (match Check.divergence st with
               | exception exn -> raised "divergence oracle" exn
               | Some reason ->
                 Error
                   (Printf.sprintf "step %d (%s): %s" i (Delta.describe d)
                      reason)
               | None ->
                 if not (Check.conformance_clean st) then
                   Error
                     (Printf.sprintf
                        "step %d (%s): kernel capability state does not \
                         conform"
                        i (Delta.describe d))
                 else drive (i + 1) st rest))
       in
       (match Check.create [] with
        | exception exn -> raised "create" exn
        | st -> drive 1 st deltas))
