(** Reproducer corpus format.

    Every failure the hunt finds is shrunk to a minimal input and saved
    as a [.repro] file, so the bug stays pinned after the fix: the
    corpus is replayed under the [@hunt] alias and every entry must pass.

    Format (line-based, [#] comments allowed before [payload]):
    {v
    lateral-hunt repro v1
    engine storage
    seed 7
    note corrupt superblock must mount to an error
    payload
    <raw engine payload, verbatim until end of file>
    v}

    Everything after the [payload] marker belongs to the engine: manifest
    source text for the manifest engine, one operation per line for the
    substrate and storage engines. *)

type t = {
  engine : string;   (** "manifest", "substrate" or "storage" *)
  seed : int64;      (** the run that found it, for provenance *)
  note : string;     (** one-line description of the property at stake *)
  payload : string;
}

val parse : string -> (t, string) result

(** [to_text t] renders back to the file format; [parse] round-trips. *)
val to_text : t -> string

val load : string -> (t, string) result
