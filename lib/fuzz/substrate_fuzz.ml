open Lateral
module Drbg = Lt_crypto.Drbg

let name = "substrate"

(* ---------------------------------------------------------------- *)
(* the fixed topology under test                                     *)
(* ---------------------------------------------------------------- *)

(* gate (network-facing) -> worker -> vault; behaviours are pure
   functions of the request so reply bytes must agree across
   substrates byte-for-byte. The vault refuses "poison" through the
   typed failure channel — the differential proves every adapter
   carries Service_failure intact through its own invocation hop
   (ecall, SMC, IPC, mailbox, PAL session). *)

let rev s = String.init (String.length s) (fun i -> s.[String.length s - 1 - i])

let topology substrate =
  [ ( Manifest.v ~name:"gate" ~provides:[ "relay" ] ~network_facing:true
        ~connects_to:[ Manifest.conn "worker" "work" ]
        ~substrate (),
      fun _ctx ~service:_ req -> "gate:" ^ req );
    ( Manifest.v ~name:"worker" ~provides:[ "work" ]
        ~connects_to:[ Manifest.conn "vault" "seal" ]
        ~substrate (),
      fun _ctx ~service:_ req -> "work:" ^ rev req );
    ( Manifest.v ~name:"vault" ~provides:[ "seal" ] ~substrate (),
      fun _ctx ~service:_ req ->
        if req = "poison" then Substrate.fail "vault refuses poison"
        else "sealed:" ^ req ) ]

(* ---------------------------------------------------------------- *)
(* the substrate pool                                                *)
(* ---------------------------------------------------------------- *)

(* constructed from a constant seed so every [check] call sees
   identical substrate instances; the op payload is the only variable *)
let pool () =
  let open Lt_crypto in
  let rng = Drbg.create 0x1a7e4a1L in
  let ca = Rsa.generate ~bits:512 rng in
  let acc = ref [] in
  let m1 = Lt_hw.Machine.create ~dram_pages:128 () in
  let mk, _ =
    Substrate_kernel.make m1 (Lt_kernel.Sched.Round_robin { quantum = 500 }) ()
  in
  acc := ("microkernel", mk) :: !acc;
  let m2 = Lt_hw.Machine.create ~dram_pages:128 () in
  let sgx, _ = Substrate_sgx.make m2 rng ~ca_name:"intel" ~ca_key:ca () in
  acc := ("sgx", sgx) :: !acc;
  let m3 = Lt_hw.Machine.create ~dram_pages:64 () in
  Lt_hw.Fuse.program m3.Lt_hw.Machine.fuses ~name:"devkey"
    ~visibility:Lt_hw.Fuse.Secure_only (Drbg.bytes rng 32);
  (match
     Substrate_trustzone.make m3 ~vendor:ca.Rsa.pub
       ~image:(Lt_tpm.Boot.sign_stage ca ~name:"tz-os" "tz-os-v1")
       ~device_id:"dev" ~device_key_name:"devkey" ~secure_pages:8
   with
   | Ok (tz, _) -> acc := ("trustzone", tz) :: !acc
   | Error _ -> ());
  let m4 = Lt_hw.Machine.create ~dram_pages:64 () in
  let sep, _, _ = Substrate_sep.make m4 rng ~device_id:"dev" ~private_pages:8 in
  acc := ("sep", sep) :: !acc;
  let cheri, _, _ = Substrate_cheri.make rng ~size:(1 lsl 17) () in
  acc := ("cheri", cheri) :: !acc;
  let m3s, _ = Substrate_m3.make rng ~ca_name:"m3-mfg" ~ca_key:ca ~tiles:8 () in
  acc := ("m3", m3s) :: !acc;
  let tpm = Lt_tpm.Tpm.manufacture rng ~ca_name:"tpm-vendor" ~ca_key:ca ~serial:"1" in
  acc := ("flicker", Substrate_flicker.make tpm ()) :: !acc;
  List.rev !acc

(* ---------------------------------------------------------------- *)
(* operations                                                        *)
(* ---------------------------------------------------------------- *)

type op =
  | Call of { caller : string option; target : string; service : string; payload : string }
  | Crash of string
  | Revive of string
  | Storm of { pages : int; components : int }

let parse_op line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "call"; caller; target; service; payload ] ->
    let caller = if caller = "-" then None else Some caller in
    Ok (Call { caller; target; service; payload })
  | [ "crash"; c ] -> Ok (Crash c)
  | [ "revive"; c ] -> Ok (Revive c)
  | [ "storm"; pages; components ] ->
    (match (int_of_string_opt pages, int_of_string_opt components) with
     | Some pages, Some components when pages > 0 && components > 0 ->
       Ok (Storm { pages; components })
     | _ -> Error (Printf.sprintf "bad storm %S" line))
  | [ "" ] -> Error "empty line"
  | _ -> Error (Printf.sprintf "unparseable op %S" line)

let render_op = function
  | Call { caller; target; service; payload } ->
    Printf.sprintf "call %s %s %s %s"
      (Option.value caller ~default:"-") target service payload
  | Crash c -> Printf.sprintf "crash %s" c
  | Revive c -> Printf.sprintf "revive %s" c
  | Storm { pages; components } -> Printf.sprintf "storm %d %d" pages components

(* ---------------------------------------------------------------- *)
(* the reference model                                               *)
(* ---------------------------------------------------------------- *)

(* what a caller can observe about one call, with crash reasons
   abstracted away (each substrate words its own death differently) *)
type observable =
  | Reply of string
  | Deny
  | No_target
  | No_service
  | Dead
  | Refused of string

let pp_obs = function
  | Reply r -> Printf.sprintf "reply %S" r
  | Deny -> "deny"
  | No_target -> "no-target"
  | No_service -> "no-service"
  | Dead -> "dead"
  | Refused r -> Printf.sprintf "refused %S" r

let components = [ "gate"; "worker"; "vault" ]

let provides = function
  | "gate" -> [ "relay" ]
  | "worker" -> [ "work" ]
  | "vault" -> [ "seal" ]
  | _ -> []

let declared ~caller ~target ~service =
  match (caller, target, service) with
  | "gate", "worker", "work" -> true
  | "worker", "vault", "seal" -> true
  | _ -> false

let behave target service payload =
  match (target, service) with
  | "gate", "relay" -> Reply ("gate:" ^ payload)
  | "worker", "work" -> Reply ("work:" ^ rev payload)
  | "vault", "seal" ->
    if payload = "poison" then Refused "vault refuses poison"
    else Reply ("sealed:" ^ payload)
  | _ -> assert false

(* mirrors the router's decision order: unknown target, then the
   channel check (which fires before the service-existence check, so
   an undeclared pair is a denial even for a bogus service), then
   unknown service, then the target's own state *)
let model_call alive ~caller ~target ~service ~payload =
  if not (List.mem target components) then No_target
  else
    let authorized =
      match caller with
      | None -> target = "gate"  (* only the gate is network-facing *)
      | Some c -> List.mem c components && declared ~caller:c ~target ~service
    in
    if not authorized then Deny
    else if not (List.mem service (provides target)) then No_service
    else if not (List.mem target alive) then Dead
    else behave target service payload

(* ---------------------------------------------------------------- *)
(* running one deployment                                            *)
(* ---------------------------------------------------------------- *)

let classify = function
  | Ok r -> Reply r
  | Error (App.Unknown_component _) -> No_target
  | Error (App.Unknown_service _) -> No_service
  | Error (App.Denied _) -> Deny
  | Error (App.Crashed _) -> Dead
  | Error (App.Failed { reason; _ }) -> Refused reason

(* storms are pure functions of their two integers, so each distinct
   (pages, components) pair boots its throwaway kernel exactly once per
   process; repeats hit the memo *)
let storm_memo : (int * int, (unit, string) result) Hashtbl.t =
  Hashtbl.create 8

let storm_check_uncached ~pages ~components =
  (* frame exhaustion on the microkernel must be a typed launch error;
     satellite fix for the map_memory panic path *)
  let machine = Lt_hw.Machine.create ~dram_pages:pages () in
  let mk, _ =
    Substrate_kernel.make machine (Lt_kernel.Sched.Round_robin { quantum = 500 }) ()
  in
  let specs =
    List.init components (fun i ->
        ( Manifest.v ~name:(Printf.sprintf "comp%d" i) ~provides:[ "noop" ]
            ~substrate:"microkernel" (),
          fun _ctx ~service:_ req -> req ))
  in
  match Deploy.deploy ~substrates:[ ("microkernel", mk) ] specs with
  | exception exn ->
    Error (Printf.sprintf "storm raised %s" (Printexc.to_string exn))
  | Ok _ -> Ok ()
  | Error e ->
    let mentions_frames =
      let needle = "out of physical frames" in
      let n = String.length needle and h = String.length e in
      let rec go i = i + n <= h && (String.sub e i n = needle || go (i + 1)) in
      go 0
    in
    if mentions_frames then Ok ()
    else Error (Printf.sprintf "storm failed untypedly: %s" e)

let storm_check ~pages ~components =
  match Hashtbl.find_opt storm_memo (pages, components) with
  | Some r -> r
  | None ->
    let r = storm_check_uncached ~pages ~components in
    Hashtbl.replace storm_memo (pages, components) r;
    r

let contains_sub ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Boot every substrate and deployment exactly once, fork the booted
   world, and rewind to the fork before each case: O(dirty) per case
   instead of a full seven-substrate boot.  Equal-seed runs stay
   byte-identical because the restore is exact — the conformance
   double-run diff in the fuzz engine checks precisely that. *)
type env = {
  e_n_subs : int;
  e_deployments : (string * Deploy.t) list;
  e_world : Lt_world.World.t;
  e_pristine : Lt_world.World.snap;
}

let env =
  lazy
    (let subs = pool () in
     let deployments =
       List.filter_map
         (fun (sname, sub) ->
           match Deploy.deploy ~substrates:[ (sname, sub) ] (topology sname) with
           | Ok d -> Some (sname, d)
           | Error _ -> None)
         subs
     in
     let world = Lt_world.World.create () in
     List.iter
       (fun (_, d) ->
         Lt_world.World.add_all world (Lt_world.World.layers (Deploy.world d)))
       deployments;
     { e_n_subs = List.length subs;
       e_deployments = deployments;
       e_world = world;
       e_pristine = Lt_world.World.fork world })

let run_ops ops =
  let { e_n_subs; e_deployments = deployments; e_world; e_pristine } =
    Lazy.force env
  in
  Lt_world.World.restore e_world e_pristine;
  if List.length deployments < e_n_subs then
    Error
      (Printf.sprintf "only %d of %d substrates could host the topology"
         (List.length deployments) e_n_subs)
  else begin
    let alive = ref components in
    let failure = ref None in
    let fail fmt = Printf.ksprintf (fun s -> if !failure = None then failure := Some s) fmt in
    List.iteri
      (fun opi op ->
        if !failure = None then
          match op with
          | Storm { pages; components } ->
            (match storm_check ~pages ~components with
             | Ok () -> ()
             | Error e -> fail "op %d: %s" opi e)
          | Crash c ->
            List.iter
              (fun (sname, d) ->
                match Deploy.crash d c with
                | Ok () | Error _ -> ()
                | exception exn ->
                  fail "op %d: crash %s raised on %s: %s" opi c sname
                    (Printexc.to_string exn))
              deployments;
            if List.mem c components then
              alive := List.filter (fun x -> x <> c) !alive
          | Revive c ->
            List.iter
              (fun (sname, d) ->
                match Deploy.relaunch d c with
                | Ok () | Error _ -> ()
                | exception exn ->
                  fail "op %d: revive %s raised on %s: %s" opi c sname
                    (Printexc.to_string exn))
              deployments;
            if List.mem c components && not (List.mem c !alive) then
              alive := c :: !alive
          | Call { caller; target; service; payload } ->
            let expected = model_call !alive ~caller ~target ~service ~payload in
            List.iter
              (fun (sname, d) ->
                if !failure = None then
                  match Deploy.call_typed d ~caller ~target ~service payload with
                  | exception exn ->
                    fail "op %d (%s) raised on %s: %s" opi (render_op op) sname
                      (Printexc.to_string exn)
                  | result ->
                    let got = classify result in
                    if got <> expected then
                      fail "op %d (%s): %s disagrees with the model: expected %s, got %s"
                        opi (render_op op) sname (pp_obs expected) (pp_obs got);
                    (* a typed refusal must never surface as a wrapped
                       exception: the Service_failure channel carries the
                       reason verbatim through every substrate hop *)
                    (match result with
                     | Error (App.Failed { reason; _ })
                       when contains_sub ~needle:"Failure(" reason ->
                       fail "op %d (%s): %s leaked an exception into a refusal: %s"
                         opi (render_op op) sname reason
                     | _ -> ()))
              deployments)
      ops;
    match !failure with None -> Ok () | Some what -> Error what
  end

(* ---------------------------------------------------------------- *)
(* engine interface                                                  *)
(* ---------------------------------------------------------------- *)

let check payload =
  let lines =
    String.split_on_char '\n' payload
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      (match parse_op line with
       | Ok op -> parse (op :: acc) rest
       | Error e -> Error e)
  in
  match parse [] lines with
  | Error e -> Error (Printf.sprintf "bad payload: %s" e)
  | Ok ops -> (try run_ops ops with exn ->
      Error (Printf.sprintf "harness raised %s" (Printexc.to_string exn)))

let caller_pool = [| "-"; "gate"; "worker"; "vault"; "ghost" |]

let target_pool = [| "gate"; "worker"; "vault"; "ghost" |]

let service_pool = [| "relay"; "work"; "seal"; "bogus" |]

let payload_pool = [| "hello"; "poison"; "x"; "data42"; "zz9" |]

let pick rng a = a.(Drbg.int rng (Array.length a))

let generate rng _case =
  let n = 2 + Drbg.int rng 10 in
  let comp rng = pick rng [| "gate"; "worker"; "vault" |] in
  let ops =
    List.init n (fun _ ->
        match Drbg.int rng 10 with
        | 0 -> Crash (comp rng)
        | 1 -> Revive (comp rng)
        | 2 when Drbg.int rng 2 = 0 ->
          Storm { pages = 2 + Drbg.int rng 6; components = 4 + Drbg.int rng 4 }
        | _ ->
          let caller = pick rng caller_pool in
          Call
            { caller = (if caller = "-" then None else Some caller);
              target = pick rng target_pool;
              service = pick rng service_pool;
              payload = pick rng payload_pool })
  in
  String.concat "\n" (List.map render_op ops)
