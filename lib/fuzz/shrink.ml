(* ddmin over lines: try dropping aligned chunks at granularity n/2,
   n/4, ..., 1; whenever a drop still reproduces, restart from the
   smaller input. Then try truncating individual lines byte-wise from
   the right, which shrinks embedded data tokens. *)

let split payload = String.split_on_char '\n' payload

let join lines = String.concat "\n" lines

let drop_chunk lines ~at ~len =
  List.filteri (fun i _ -> i < at || i >= at + len) lines

let lines ?(steps = ref 0) still_fails payload =
  let check lines =
    incr steps;
    still_fails (join lines)
  in
  let rec minimize lines chunk =
    let n = List.length lines in
    if n <= 1 || chunk < 1 then lines
    else begin
      let rec try_at at =
        if at >= n then None
        else
          let candidate = drop_chunk lines ~at ~len:chunk in
          if candidate <> lines && candidate <> [] && check candidate then
            Some candidate
          else try_at (at + chunk)
      in
      match try_at 0 with
      | Some smaller -> minimize smaller (min chunk (List.length smaller / 2))
      | None -> minimize lines (chunk / 2)
    end
  in
  let lines0 = split payload in
  let reduced = minimize lines0 (max 1 (List.length lines0 / 2)) in
  (* second pass: halve the surviving lines from the right while the
     failure persists, shrinking embedded data tokens *)
  let rec shorten_pass lines i =
    if i >= List.length lines then lines
    else
      let line = List.nth lines i in
      let n = String.length line in
      if n <= 4 then shorten_pass lines (i + 1)
      else
        let candidate_line = String.sub line 0 (n / 2) in
        let candidate =
          List.mapi (fun j l -> if j = i then candidate_line else l) lines
        in
        if check candidate then shorten_pass candidate i
        else shorten_pass lines (i + 1)
  in
  join (shorten_pass reduced 0)
