type t = {
  engine : string;
  seed : int64;
  note : string;
  payload : string;
}

let magic = "lateral-hunt repro v1"

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec header t = function
    | [] -> Error "missing payload section"
    | line :: rest ->
      let line' = String.trim line in
      if line' = "" || String.length line' > 0 && line'.[0] = '#' then
        header t rest
      else if line' = "payload" then
        (* payload is verbatim: everything after the marker line, with
           one trailing newline normalized away *)
        let payload = String.concat "\n" rest in
        let payload =
          let n = String.length payload in
          if n > 0 && payload.[n - 1] = '\n' then String.sub payload 0 (n - 1)
          else payload
        in
        Ok { t with payload }
      else
        (match String.index_opt line' ' ' with
         | None -> Error (Printf.sprintf "malformed line %S" line')
         | Some i ->
           let key = String.sub line' 0 i in
           let value = String.trim (String.sub line' (i + 1) (String.length line' - i - 1)) in
           (match key with
            | "engine" -> header { t with engine = value } rest
            | "seed" ->
              (match Int64.of_string_opt value with
               | Some s -> header { t with seed = s } rest
               | None -> Error (Printf.sprintf "unreadable seed %S" value))
            | "note" -> header { t with note = value } rest
            | _ -> Error (Printf.sprintf "unknown key %S" key)))
  in
  match lines with
  | first :: rest when String.trim first = magic ->
    (match header { engine = ""; seed = 0L; note = ""; payload = "" } rest with
     | Error _ as e -> e
     | Ok t when t.engine = "" -> Error "missing engine"
     | Ok t -> Ok t)
  | _ -> Error (Printf.sprintf "not a repro file (expected %S on line 1)" magic)

let to_text t =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "engine %s\n" t.engine);
  Buffer.add_string b (Printf.sprintf "seed %Ld\n" t.seed);
  if t.note <> "" then Buffer.add_string b (Printf.sprintf "note %s\n" t.note);
  Buffer.add_string b "payload\n";
  Buffer.add_string b t.payload;
  Buffer.add_char b '\n';
  Buffer.contents b

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> (match parse text with
             | Ok t -> Ok t
             | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error e -> Error e
