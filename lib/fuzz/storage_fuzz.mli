(** Engine 3: storage stack fuzzing — VPFS over the legacy FS under
    random operation/power-cut interleavings and corrupt images.

    The harness maintains a shadow oracle (the map of acknowledged
    writes) and checks, after every remount:

    - {b crash consistency}: on a clean image the recovered VPFS must
      hold exactly the acknowledged contents, with the one in-flight
      mutation allowed to land on either side of a power cut — never
      torn, never lost once acknowledged;
    - {b totality}: once the image has been bit-flipped, consistency is
      off the table but every operation — mount, open, read, write —
      must return [Ok]/[Error], never raise
      ({!Lateral.Substrate.Service_failure} excepted nowhere: storage
      has no refusal channel). The only tolerated exception is the
      simulated {!Lt_storage.Legacy_fs.Crashed} while a power cut is
      armed, which the harness answers with a remount.

    Payload = one operation per line:
    {v
    write <path> <data>
    delete <path>
    cut <writes-before-power-loss>
    corrupt <block> <byte> <bit>
    remount
    v} *)

val name : string

val generate : Lt_crypto.Drbg.t -> int -> string

(** [check payload] — [Ok ()] when consistency and totality hold;
    [Error what] otherwise. Never raises. *)
val check : string -> (unit, string) result
