(** Containment-soundness engine: fuzzes the static blast-radius
    analysis ({!Lateral.Contain}) and its chaos-harness gate.

    Payloads have two line-based sections. A {e plan} (scenario, seed,
    request count, kill/flap/kill-pct schedule) drives a real
    {!Lt_resil.Chaos} run whose observed per-component impacts must lie
    inside the static radii of the components actually killed — the
    soundness inclusion the qcheck property in [test_resil] asserts on
    fixed scenarios, here re-checked under generated schedules. A
    {e manifest block} (from the first [component] line on) feeds the
    analysis directly: totality, determinism, every root inside its own
    radius, and supervised radii contained in unsupervised ones.

    Unparseable payloads fail with a ["bad payload:"] prefix so the
    shrinker never minimizes a real violation into a parse error. *)

val name : string

val generate : Lt_crypto.Drbg.t -> int -> string

val check : string -> (unit, string) result
