(** The hunt driver: seeded, deterministic differential fuzzing.

    Runs the five engines ({!Manifest_fuzz}, {!Substrate_fuzz},
    {!Storage_fuzz}, {!Analysis_fuzz}, {!Contain_fuzz}), shrinks every
    failure to a
    minimal reproducer with {!Shrink}, and renders a report. All
    randomness derives from the seed: equal seeds give byte-identical
    reports, whatever subset of engines runs. *)

type engine = Manifest | Substrate | Storage | Analysis | Contain

val all_engines : engine list

val engine_name : engine -> string

val engine_of_name : string -> engine option

type failure = {
  f_case : int;          (** generation index within the engine's run *)
  f_what : string;       (** the property that broke, after shrinking *)
  f_repro : Repro.t;     (** minimal reproducer, corpus-ready *)
}

type engine_report = {
  e_engine : engine;
  e_cases : int;
  e_failures : failure list;
  e_shrink_steps : int;  (** predicate evaluations spent minimizing *)
}

type report = {
  r_seed : int64;
  r_engines : engine_report list;
}

(** [run ~seed ~budget ()] — [budget] generated cases per engine. Each
    engine's random stream depends only on [seed], not on which other
    engines are selected. *)
val run : ?engines:engine list -> seed:int64 -> budget:int -> unit -> report

(** [ok report] — no failures anywhere. *)
val ok : report -> bool

val render_text : report -> string

val render_json : report -> string

(** [replay repro] — re-runs the reproducer's payload under its
    engine's property. [Ok ()] means the property holds (the bug it
    pinned stays fixed); [Error _] is the property violation or an
    unknown engine name. *)
val replay : Repro.t -> (unit, string) result

val replay_file : string -> (unit, string) result
