module Drbg = Lt_crypto.Drbg

type engine = Manifest | Substrate | Storage | Analysis | Contain

(* New engines ride at the end: the master stream is split once per
   engine in this order, so appending an engine leaves the existing
   engines' streams (and the committed corpus) untouched *)
let all_engines = [ Manifest; Substrate; Storage; Analysis; Contain ]

let engine_name = function
  | Manifest -> Manifest_fuzz.name
  | Substrate -> Substrate_fuzz.name
  | Storage -> Storage_fuzz.name
  | Analysis -> Analysis_fuzz.name
  | Contain -> Contain_fuzz.name

let engine_of_name = function
  | "manifest" -> Some Manifest
  | "substrate" -> Some Substrate
  | "storage" -> Some Storage
  | "analysis" -> Some Analysis
  | "contain" -> Some Contain
  | _ -> None

let engine_generate = function
  | Manifest -> Manifest_fuzz.generate
  | Substrate -> Substrate_fuzz.generate
  | Storage -> Storage_fuzz.generate
  | Analysis -> Analysis_fuzz.generate
  | Contain -> Contain_fuzz.generate

let engine_check = function
  | Manifest -> Manifest_fuzz.check
  | Substrate -> Substrate_fuzz.check
  | Storage -> Storage_fuzz.check
  | Analysis -> Analysis_fuzz.check
  | Contain -> Contain_fuzz.check

type failure = {
  f_case : int;
  f_what : string;
  f_repro : Repro.t;
}

type engine_report = {
  e_engine : engine;
  e_cases : int;
  e_failures : failure list;
  e_shrink_steps : int;
}

type report = {
  r_seed : int64;
  r_engines : engine_report list;
}

let run_engine engine ~seed ~budget ~rng =
  let generate = engine_generate engine and check = engine_check engine in
  let failures = ref [] in
  let shrink_steps = ref 0 in
  for case = 0 to budget - 1 do
    (* each case gets its own split stream so a payload change in one
       case cannot shift every later case *)
    let payload = generate (Drbg.split rng) case in
    match check payload with
    | Ok () -> ()
    | Error _ ->
      (* a shrunk payload must still exercise the property, not merely
         fail: collapsing into an op the engine cannot parse would
         "minimize" every bug to a parse error *)
      let still_fails p =
        match check p with
        | Ok () -> false
        | Error e -> not (String.starts_with ~prefix:"bad payload:" e)
      in
      let minimal = Shrink.lines ~steps:shrink_steps still_fails payload in
      let what =
        match check minimal with Error w -> w | Ok () -> "unshrinkable"
      in
      failures :=
        { f_case = case;
          f_what = what;
          f_repro =
            { Repro.engine = engine_name engine; seed; note = what;
              payload = minimal } }
        :: !failures
  done;
  { e_engine = engine;
    e_cases = budget;
    e_failures = List.rev !failures;
    e_shrink_steps = !shrink_steps }

let run ?(engines = all_engines) ~seed ~budget () =
  let master = Drbg.create seed in
  (* split once per engine in canonical order, so `--engine storage`
     sees the same storage stream as a full run with the same seed *)
  let streams = List.map (fun e -> (e, Drbg.split master)) all_engines in
  let reports =
    List.filter_map
      (fun (e, rng) ->
        if List.mem e engines then Some (run_engine e ~seed ~budget ~rng)
        else None)
      streams
  in
  { r_seed = seed; r_engines = reports }

let ok report = List.for_all (fun e -> e.e_failures = []) report.r_engines

let render_text report =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "lateral hunt: seed %Ld\n" report.r_seed);
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  %-10s %4d cases  %d failures  (%d shrink steps)\n"
           (engine_name e.e_engine) e.e_cases (List.length e.e_failures)
           e.e_shrink_steps);
      List.iter
        (fun f ->
          Buffer.add_string b
            (Printf.sprintf "    case %d: %s\n" f.f_case f.f_what);
          String.split_on_char '\n' f.f_repro.Repro.payload
          |> List.iter (fun line ->
                 Buffer.add_string b (Printf.sprintf "      | %s\n" line)))
        e.e_failures)
    report.r_engines;
  Buffer.add_string b
    (if ok report then "verdict: clean\n" else "verdict: failures found\n");
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_json report =
  let failure f =
    Printf.sprintf
      "{\"case\":%d,\"what\":\"%s\",\"payload\":\"%s\"}"
      f.f_case (json_escape f.f_what) (json_escape f.f_repro.Repro.payload)
  in
  let engine e =
    Printf.sprintf
      "{\"engine\":\"%s\",\"cases\":%d,\"shrink_steps\":%d,\"failures\":[%s]}"
      (engine_name e.e_engine) e.e_cases e.e_shrink_steps
      (String.concat "," (List.map failure e.e_failures))
  in
  Printf.sprintf "{\"seed\":%Ld,\"clean\":%b,\"engines\":[%s]}\n" report.r_seed
    (ok report)
    (String.concat "," (List.map engine report.r_engines))

let replay (repro : Repro.t) =
  match engine_of_name repro.Repro.engine with
  | None -> Error (Printf.sprintf "unknown engine %S" repro.Repro.engine)
  | Some engine -> engine_check engine repro.Repro.payload

let replay_file path =
  match Repro.load path with
  | Error e -> Error e
  | Ok repro -> replay repro
