(** Engine 2: cross-substrate differential fuzzing.

    One fixed three-component application (network-facing [gate],
    plain [worker], refusal-prone [vault]) is deployed on {e every}
    substrate adapter in turn — microkernel, SGX, TrustZone, SEP,
    CHERI, M3 and Flicker — and a random operation sequence (calls
    from declared, undeclared and external callers; crashes; revivals)
    is replayed through each deployment.

    The oracle is a manifest-level reference model: a pure state
    machine over the topology and the alive set predicting each call's
    observable class (reply bytes, denial, unknown target/service,
    dead target, typed refusal). Every substrate must agree with the
    model {e and} with every other substrate — a disagreement means an
    adapter enforces channels, reports crashes or carries the typed
    failure channel ({!Lateral.Substrate.Service_failure}) differently
    from its peers.

    The [storm] operation additionally deploys onto a microkernel with
    a tiny frame budget: exhaustion must surface as a typed
    ["out of physical frames"] error, never an exception.

    Payload = one operation per line:
    {v
    call <caller|-> <target> <service> <payload>
    crash <component>
    revive <component>
    storm <dram-pages> <components>
    v} *)

val name : string

val generate : Lt_crypto.Drbg.t -> int -> string

(** [check payload] — [Ok ()] when every substrate agrees with the
    reference model on every operation; [Error what] names the first
    divergence (substrate, operation, expected, got). Never raises. *)
val check : string -> (unit, string) result
