open Lateral
module Drbg = Lt_crypto.Drbg
module Load = Lt_load.Load
module Chaos = Lt_resil.Chaos

let name = "contain"

(* ---------------------------------------------------------------- *)
(* payload: a chaos plan over a scenario, then a manifest block      *)
(* ---------------------------------------------------------------- *)

(* Two sections, both line-based so the shrinker can drop lines:
   plan directives (scenario/seed/requests/kill/flap/kill-pct) up to
   the first `component` line, then a Manifest_file block. Either
   section may be empty: a plan-only payload checks dynamic inclusion,
   a manifest-only payload checks the static analysis. *)

type plan_spec = {
  ps_scenario : Load.scenario option;
  ps_seed : int;
  ps_requests : int;
  ps_kill : string list;
  ps_flap : string option;
  ps_kill_pct : int;
}

let parse_payload text =
  let lines = String.split_on_char '\n' text in
  let tokens l =
    String.split_on_char ' '
      (String.map (fun c -> if c = '\t' then ' ' else c) l)
    |> List.filter (fun s -> s <> "")
  in
  let rec split_plan acc = function
    | [] -> (List.rev acc, [])
    | l :: rest when (match tokens l with
                      | "component" :: _ -> true
                      | _ -> false) ->
      (List.rev acc, l :: rest)
    | l :: rest -> split_plan (l :: acc) rest
  in
  let plan_lines, block_lines = split_plan [] lines in
  let spec =
    ref
      { ps_scenario = None; ps_seed = 1; ps_requests = 10; ps_kill = [];
        ps_flap = None; ps_kill_pct = 0 }
  in
  let bad what = Error (Printf.sprintf "bad payload: %s" what) in
  let rec go = function
    | [] -> Ok ()
    | l :: rest ->
      (match tokens l with
       | [] -> go rest
       | [ "scenario"; s ] ->
         (match Load.scenario_of_string s with
          | Ok sc ->
            spec := { !spec with ps_scenario = Some sc };
            go rest
          | Error e -> bad e)
       | [ "seed"; n ] ->
         (match int_of_string_opt n with
          | Some v -> spec := { !spec with ps_seed = v }; go rest
          | None -> bad (Printf.sprintf "bad seed %S" n))
       | [ "requests"; n ] ->
         (match int_of_string_opt n with
          | Some v when v >= 1 && v <= 60 ->
            spec := { !spec with ps_requests = v };
            go rest
          | _ -> bad (Printf.sprintf "bad requests %S (1-60)" n))
       | [ "kill"; c ] ->
         spec := { !spec with ps_kill = !spec.ps_kill @ [ c ] };
         go rest
       | [ "flap"; c ] -> spec := { !spec with ps_flap = Some c }; go rest
       | [ "kill-pct"; n ] ->
         (match int_of_string_opt n with
          | Some v when v >= 0 && v <= 100 ->
            spec := { !spec with ps_kill_pct = v };
            go rest
          | _ -> bad (Printf.sprintf "bad kill-pct %S" n))
       | w :: _ -> bad (Printf.sprintf "unknown plan directive %S" w))
  in
  match go plan_lines with
  | Error _ as e -> e
  | Ok () -> Ok (!spec, String.concat "\n" block_lines)

(* ---------------------------------------------------------------- *)
(* generation                                                        *)
(* ---------------------------------------------------------------- *)

(* real per-scenario names (plus some misses: an unknown name must be
   a typed plan rejection, never a crash) *)
let scenario_comps = function
  | Load.Mail ->
    [| "ui"; "imap"; "smtp"; "tls"; "keystore"; "storage"; "legacyfs";
       "renderer"; "composer"; "legacy_os" |]
  | Load.Meter -> [| "collector"; "meter"; "utility"; "anonymizer" |]
  | Load.Cloud -> [| "host"; "enclave" |]

let name_pool = [| "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta" |]

let service_pool = [| "ping"; "store"; "query"; "io" |]

let substrate_pool =
  [| "microkernel"; "sgx"; "sep"; "trustzone"; "monolithic-os"; "cheri";
     "flicker"; "m3-noc"; "weird-metal" |]

let pick rng a = a.(Drbg.int rng (Array.length a))

let gen_plan rng b =
  let scenario = List.nth Load.all_scenarios (Drbg.int rng 3) in
  Buffer.add_string b
    (Printf.sprintf "scenario %s\nseed %d\nrequests %d\n"
       (Load.scenario_name scenario) (Drbg.int rng 1000)
       (1 + Drbg.int rng 40));
  let comps = scenario_comps scenario in
  for _ = 1 to Drbg.int rng 3 do
    let victim =
      if Drbg.int rng 8 = 0 then pick rng name_pool else pick rng comps
    in
    Buffer.add_string b (Printf.sprintf "kill %s\n" victim)
  done;
  if Drbg.int rng 4 = 0 then
    Buffer.add_string b (Printf.sprintf "flap %s\n" (pick rng comps));
  if Drbg.int rng 4 = 0 then
    Buffer.add_string b (Printf.sprintf "kill-pct %d\n" (Drbg.int rng 20))

(* a fleet aimed at every propagation-edge kind: shared domains,
   exclusive and non-crashable substrates, restart policies, stateful
   members, channel cycles; dangling targets allowed *)
let gen_block rng b =
  let n = 1 + Drbg.int rng (Array.length name_pool) in
  for i = 0 to n - 1 do
    let cname = name_pool.(i) in
    Buffer.add_string b (Printf.sprintf "component %s\n" cname);
    if Drbg.int rng 2 = 0 then
      Buffer.add_string b
        (Printf.sprintf "  domain shared%d\n" (Drbg.int rng 2));
    if Drbg.int rng 2 = 0 then
      Buffer.add_string b
        (Printf.sprintf "  substrate %s\n" (pick rng substrate_pool));
    if Drbg.int rng 3 = 0 then Buffer.add_string b "  stateful\n";
    (match Drbg.int rng 4 with
     | 0 -> Buffer.add_string b "  restart on-failure 3 256\n"
     | 1 -> Buffer.add_string b "  restart always 2\n"
     | 2 -> Buffer.add_string b "  restart never\n"
     | _ -> ());
    Buffer.add_string b (Printf.sprintf "  provides %s\n" (pick rng service_pool));
    Array.iter
      (fun target ->
        if target <> cname && Drbg.int rng 3 = 0 then
          Buffer.add_string b
            (Printf.sprintf "  %s %s.%s\n"
               (if Drbg.int rng 4 = 0 then "connects-vetted" else "connects")
               target (pick rng service_pool)))
      name_pool
  done

let generate rng _case =
  let b = Buffer.create 256 in
  (match Drbg.int rng 4 with
   | 0 -> gen_plan rng b
   | 1 -> gen_block rng b
   | _ ->
     gen_plan rng b;
     gen_block rng b);
  Buffer.contents b

(* ---------------------------------------------------------------- *)
(* the properties                                                    *)
(* ---------------------------------------------------------------- *)

let raised what exn =
  Error (Printf.sprintf "%s raised %s" what (Printexc.to_string exn))

let rank_of s =
  match Contain.impact_of_string s with
  | Some i -> Contain.rank i
  | None -> 99

(* static: analyze is total and deterministic, every root sits in its
   own radius at its own crash impact, and the supervised radii are
   contained in the unsupervised ones (hardening only shrinks damage) *)
let check_static ms =
  match Contain.analyze ms with
  | exception exn -> raised "Contain.analyze" exn
  | r ->
    let r2 = Contain.analyze ms in
    if r <> r2 then Error "analyze is not deterministic"
    else begin
      match
        ( Contain.render_text ~file:"fuzz" r,
          Contain.render_json ~file:"fuzz" r,
          Contain.to_dot ms r )
      with
      | exception exn -> raised "contain renderers" exn
      | _ ->
        let unsup =
          Contain.analyze
            ~config:{ Contain.default_config with Contain.supervised = false }
            ms
        in
        let radius_of (res : Contain.result) root =
          List.find_opt (fun x -> x.Contain.r_root = root) res.Contain.radii
        in
        let rec roots = function
          | [] -> Ok ()
          | (x : Contain.radius) :: rest ->
            let root = x.Contain.r_root in
            (match List.assoc_opt root x.Contain.r_hit with
             | None ->
               Error (Printf.sprintf "%s missing from its own radius" root)
             | Some self
               when Contain.rank self < Contain.rank x.Contain.r_self ->
               (* a restart storm may escalate the root past its own
                  crash impact, but never below it *)
               Error
                 (Printf.sprintf "%s: self impact %s but radius says %s" root
                    (Contain.impact_to_string x.Contain.r_self)
                    (Contain.impact_to_string self))
             | Some _ ->
               (match radius_of unsup root with
                | None ->
                  Error
                    (Printf.sprintf "%s absent from the unsupervised radii"
                       root)
                | Some ux ->
                  let escapee =
                    List.find_opt
                      (fun (victim, im) ->
                        match List.assoc_opt victim ux.Contain.r_hit with
                        | None -> true
                        | Some uim -> Contain.rank uim < Contain.rank im)
                      x.Contain.r_hit
                  in
                  (match escapee with
                   | Some (victim, im) ->
                     Error
                       (Printf.sprintf
                          "%s: supervised radius exceeds unsupervised at %s \
                           (%s)"
                          root victim (Contain.impact_to_string im))
                   | None -> roots rest)))
        in
        roots r.Contain.radii
    end

(* dynamic: every impact the chaos harness observes must lie inside
   the static prediction for the components the plan actually killed *)
let check_dynamic spec =
  match spec.ps_scenario with
  | None -> Ok ()
  | Some scenario ->
    let plan =
      { Chaos.kill = spec.ps_kill; kill_pct = spec.ps_kill_pct;
        flap = spec.ps_flap; mid_ipc_pct = 0 }
    in
    (match
       Chaos.run ~plan ~scenario ~requests:spec.ps_requests
         ~seed:spec.ps_seed ()
     with
     | exception exn -> raised "Chaos.run" exn
     | Error _ ->
       (* plan rejection (unknown component, wrong scenario for
          legacy_os) is validation working *)
       Ok ()
     | Ok (report, _) ->
       (match Load.deploy_scenario (Drbg.create 1L) scenario with
        | exception exn -> raised "deploy_scenario" exn
        | Error e -> Error (Printf.sprintf "scenario failed to deploy: %s" e)
        | Ok dep ->
          let d = dep.Load.d_deploy in
          let ms =
            List.filter_map (Deploy.manifest d) (Deploy.components d)
          in
          let static = Contain.analyze ms in
          let kill_count y =
            List.length
              (List.filter (fun (_, n) -> n = y) report.Chaos.c_kills)
            + (if report.Chaos.c_flap_kills > 0 && spec.ps_flap = Some y
               then report.Chaos.c_flap_kills
               else 0)
          in
          let killed =
            List.sort_uniq compare
              (List.filter
                 (fun n -> n <> "legacy_os")
                 (List.map snd report.Chaos.c_kills
                 @ (if report.Chaos.c_flap_kills > 0 then
                      Option.to_list spec.ps_flap
                    else [])))
          in
          let allowed y =
            (* repeated kills may exhaust the restart budget: a give-up
               (Failed) is always inside the prediction then *)
            if kill_count y > 1 then 3
            else
              List.fold_left
                (fun acc root ->
                  match
                    List.find_opt
                      (fun x -> x.Contain.r_root = root)
                      static.Contain.radii
                  with
                  | None -> acc
                  | Some x ->
                    (match List.assoc_opt y x.Contain.r_hit with
                     | None -> acc
                     | Some im -> max acc (Contain.rank im)))
                0 killed
          in
          let rec audit = function
            | [] -> Ok ()
            | (y, obs) :: rest ->
              if rank_of obs <= allowed y then audit rest
              else
                Error
                  (Printf.sprintf
                     "observed %s on %s outside the static radius of kills \
                      [%s] (seed %d)"
                     obs y (String.concat ", " killed) spec.ps_seed)
          in
          audit report.Chaos.c_observed))

let check payload =
  match parse_payload payload with
  | exception exn -> raised "payload parse" exn
  | Error _ as e -> e
  | Ok (spec, block) ->
    let static =
      if String.trim block = "" then Ok ()
      else
        match Manifest_file.parse block with
        | exception exn -> raised "manifest parse" exn
        | Error e -> Error (Printf.sprintf "bad payload: %s" e)
        | Ok ms -> check_static ms
    in
    (match static with
     | Error _ as e -> e
     | Ok () -> check_dynamic spec)
