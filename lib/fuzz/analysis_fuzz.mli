(** Engine 4: incremental-analysis fuzzing.

    Feeds generated and mutated {!Lateral.Delta} scripts to the
    incremental {!Lateral.Check} engine and replays them from an empty
    fleet (the script's own [add] blocks build it). The properties:

    - {b parser totality}: {!Lateral.Delta.parse_script} never raises;
      rejected scripts come back as [Error _] with a line number;
    - {b round-trip}: [parse_script (to_text deltas)] yields the same
      deltas;
    - {b incremental = batch}: after {e every} step,
      {!Lateral.Check.divergence} is [None] — the incrementally
      maintained diagnostics and flow fixpoint are byte-identical to a
      from-scratch {!Lateral.Lint.run} + {!Lateral.Flow.analyze} of the
      surviving fleet;
    - {b kernel conformance}: the incrementally re-granted capability
      state conforms to the fleet after every step.

    Payload = the delta script text itself. *)

val name : string

(** [generate rng case] — a fresh payload: usually a well-formed delta
    script over a small name pool (dangling targets included), pushed
    through 0..3 mutations, sometimes raw printable garbage. *)
val generate : Lt_crypto.Drbg.t -> int -> string

(** [check payload] — [Ok ()] when every property holds (a clean
    [Error _] from the script parser counts as holding); [Error what]
    otherwise. Never raises. *)
val check : string -> (unit, string) result
