(** A per-route circuit breaker, factored out of {!Supervisor} so the
    fleet layer can put one in front of every host link.

    The state machine is the classic three-state breaker: [Closed]
    admits traffic and counts consecutive faults; [threshold] faults
    open it; while [Open] it fast-fails everything; after [cooldown]
    ticks (on the ambient {!Lt_obs.Trace} clock) the next admission
    probes [Half_open], where exactly one attempt is allowed — success
    closes the breaker, a fault re-opens it.

    Observability mirrors the supervisor's original wiring: counters
    [<prefix>/breaker_open], [<prefix>/breaker_close],
    [<prefix>/breaker_fastfail] and events of kind ["breaker"] named
    after the route with a ["state"] attribute. The default prefix is
    ["resil"], so extracting the module changed no counter names. *)

type state = Closed | Open | Half_open

type t

(** [create ?prefix ~threshold ~cooldown route] — a closed breaker for
    [route]. [threshold] is the consecutive-fault count that opens it;
    [cooldown] the ticks it stays open before probing. *)
val create : ?prefix:string -> threshold:int -> cooldown:int -> string -> t

val state : t -> state

val route : t -> string

(** [admit b] — call once per attempt, before doing the work. Moves an
    expired [Open] to [Half_open] (emitting the half-open event), then
    returns whether the attempt may proceed. [false] means the breaker
    is open: the fast-fail counter and event have been emitted and the
    caller must not touch the protected resource. *)
val admit : t -> bool

(** A half-open breaker admits exactly one probe; callers that retry
    internally must check this and collapse their attempt budget to 1. *)
val probing : t -> bool

(** [success b] — the attempt succeeded: reset the fault count and, if
    probing, close the breaker (counter + event). *)
val success : t -> unit

(** [fault b] — the attempt faulted: a probe re-opens immediately, a
    closed breaker opens once the threshold is reached. Policy answers
    (denials) are not faults — don't report them here. *)
val fault : t -> unit
