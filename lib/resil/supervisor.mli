(** Supervision and hardened calls for deployed horizontal apps.

    The paper's containment story (§III) is spatial: a subverted
    component keeps only its declared authority. This module adds the
    temporal half — a {e crashed} component costs only its own lateral
    slice, for only as long as its manifest's [restart] policy takes to
    respawn it. A {!t} wraps a {!Deploy.t} with three mechanisms:

    {ul
    {- {b supervision} — after any fault, {!heal} sweeps the deployment
       for dead components and applies each one's manifest [restart]
       policy: respawn it (fresh instance, sealed state re-derivable
       from its substrate, volatile state gone), leave it dead
       ([never] / no policy), or give up once the policy's
       restart-per-window budget is spent;}
    {- {b bounded retry} — {!call} retries faulted calls with
       exponential backoff and seeded jitter, measured on the ambient
       {!Lt_obs.Trace} clock so equal seeds give equal schedules;}
    {- {b circuit breaking} — per-route (["target.service"]) breakers
       open after consecutive faults, fast-fail while open, and probe
       half-open after a cooldown. A flapping component degrades its own
       routes; the rest of the app never waits on it.}}

    Policy errors ({!App.Denied}, unknown target/service) are returned
    verbatim: a deny is a correct answer from the reference monitor, so
    it is never retried, never trips a breaker, and never triggers a
    restart.

    Everything observable goes through {!Lt_obs}: spans/events of kind
    ["fault"], ["supervisor"], ["breaker"], ["retry"], ["deadline"], and
    counters [resil/crashes], [resil/restarts], [resil/giveups],
    [resil/retries], [resil/deadline_exceeded], [resil/breaker_open],
    [resil/breaker_close], [resil/breaker_fastfail]. All timing uses
    {!Lt_obs.Trace.ambient_now}; with no tracer installed the clock
    stands still, so deadlines and cooldowns never fire. *)

open Lateral

type config = {
  deadline : int;
      (** max ticks one attempt may burn before it counts as a fault,
          even if a reply eventually arrives *)
  retries : int;        (** extra attempts after the first, per call *)
  backoff_base : int;   (** first backoff, ticks; also the jitter bound *)
  backoff_cap : int;    (** backoff ceiling, ticks *)
  breaker_threshold : int;
      (** consecutive faults on one route that open its breaker *)
  breaker_cooldown : int;
      (** ticks a breaker stays open before probing half-open *)
  restart_cost : int;   (** ticks one supervised respawn burns *)
}

(** [{deadline = 1024; retries = 2; backoff_base = 4; backoff_cap = 64;
     breaker_threshold = 3; breaker_cooldown = 128; restart_cost = 8}] *)
val default_config : config

type breaker_state = Breaker.state = Closed | Open | Half_open

type t

(** [create ?config ~seed deploy] — the seed drives backoff jitter
    (via {!Drbg}), nothing else. *)
val create : ?config:config -> seed:int64 -> Deploy.t -> t

val deploy : t -> Deploy.t

val config : t -> config

(** [call t ~caller ~target ~service req] — {!Deploy.call_typed}
    hardened with deadline, retry and breaker. On a fault ({!App.Crashed}
    or deadline exceeded) it runs {!heal}, backs off, retries up to
    [config.retries] times, and only then reports the fault (which is
    what feeds the breaker). While a route's breaker is open, calls
    fast-fail as [Crashed] without touching the deployment. *)
val call :
  t -> caller:string option -> target:string -> service:string -> string ->
  (string, App.call_error) result

(** [crash t name] — kill a component where it stands (chaos entry
    point). Records a ["fault"] event and [resil/crashes]. *)
val crash : t -> string -> (unit, string) result

(** [heal t] sweeps every deployed component and applies restart
    policies to the dead ones. Called automatically by {!call} on every
    fault; exposed for harnesses that kill components between calls.
    A component whose policy is [never] (or absent), whose window
    budget is spent, or whose relaunch fails joins {!given_up} —
    permanently, until {!revive}. *)
val heal : t -> unit

(** Components the supervisor has stopped restarting, sorted. *)
val given_up : t -> string list

(** Successful supervised restarts of [name] so far. *)
val restarts_of : t -> string -> int

val breaker_state : t -> target:string -> service:string -> breaker_state

(** [revive t name] — operator intervention: relaunch unconditionally,
    clear the give-up mark and the restart window. *)
val revive : t -> string -> (unit, string) result
