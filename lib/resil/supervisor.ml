open Lt_crypto
open Lateral

type config = {
  deadline : int;
  retries : int;
  backoff_base : int;
  backoff_cap : int;
  breaker_threshold : int;
  breaker_cooldown : int;
  restart_cost : int;
}

let default_config =
  { deadline = 1024;
    retries = 2;
    backoff_base = 4;
    backoff_cap = 64;
    breaker_threshold = 3;
    breaker_cooldown = 128;
    restart_cost = 8 }

type breaker_state = Breaker.state = Closed | Open | Half_open

type t = {
  deploy : Deploy.t;
  cfg : config;
  rng : Drbg.t;
  (* breakers are per ROUTE, not per component: a component flapping on
     one service must not fast-fail its healthy services — containment
     is measured in lateral slices, and a route is the thinnest slice
     the router can distinguish *)
  breakers : (string, Breaker.t) Hashtbl.t;
  restart_ticks : (string, int list) Hashtbl.t; (* newest first *)
  restart_totals : (string, int) Hashtbl.t;
  gave_up : (string, unit) Hashtbl.t;
}

let create ?(config = default_config) ~seed deploy =
  { deploy;
    cfg = config;
    rng = Drbg.create seed;
    breakers = Hashtbl.create 16;
    restart_ticks = Hashtbl.create 16;
    restart_totals = Hashtbl.create 16;
    gave_up = Hashtbl.create 4 }

let deploy t = t.deploy

let config t = t.cfg

let given_up t =
  Hashtbl.fold (fun name () acc -> name :: acc) t.gave_up []
  |> List.sort Stdlib.compare

let restarts_of t name =
  Option.value (Hashtbl.find_opt t.restart_totals name) ~default:0

let breaker_for t route =
  match Hashtbl.find_opt t.breakers route with
  | Some b -> b
  | None ->
    let b =
      Breaker.create ~threshold:t.cfg.breaker_threshold
        ~cooldown:t.cfg.breaker_cooldown route
    in
    Hashtbl.replace t.breakers route b;
    b

let breaker_state t ~target ~service =
  match Hashtbl.find_opt t.breakers (Lt_obs.Trace.span_name target service) with
  | None -> Closed
  | Some b -> Breaker.state b

(* --- supervision --------------------------------------------------------- *)

let give_up t name reason =
  Hashtbl.replace t.gave_up name ();
  Lt_obs.Metrics.incr "resil/giveups";
  Lt_obs.Trace.event ~kind:"supervisor" ~name:"give-up"
    ~attrs:[ ("component", name); ("reason", reason) ]
    ()

let restart t name (r : Manifest.restart) =
  let now = Lt_obs.Trace.ambient_now () in
  let recent =
    Option.value (Hashtbl.find_opt t.restart_ticks name) ~default:[]
    |> List.filter (fun tick -> now - tick < r.Manifest.r_window)
  in
  if List.length recent >= r.Manifest.r_max then
    give_up t name
      (Printf.sprintf "restart budget spent: %d in %d ticks" r.Manifest.r_max
         r.Manifest.r_window)
  else begin
    Lt_obs.Trace.advance t.cfg.restart_cost;
    match Deploy.relaunch t.deploy name with
    | Error e -> give_up t name ("relaunch failed: " ^ e)
    | Ok () ->
      let tick = Lt_obs.Trace.ambient_now () in
      Hashtbl.replace t.restart_ticks name (tick :: recent);
      Hashtbl.replace t.restart_totals name (restarts_of t name + 1);
      Lt_obs.Metrics.incr "resil/restarts";
      Lt_obs.Trace.event ~kind:"supervisor" ~name:"restart"
        ~attrs:(Lt_obs.Trace.attr "component" name)
        ~iattr:("nth", restarts_of t name) ()
  end

let heal t =
  List.iter
    (fun name ->
      if (not (Deploy.is_alive t.deploy name)) && not (Hashtbl.mem t.gave_up name)
      then
        match Deploy.manifest t.deploy name with
        | None -> ()
        | Some man ->
          (match man.Manifest.restart with
           | None -> give_up t name "no restart policy declared"
           | Some { Manifest.r_policy = Manifest.Never; _ } ->
             give_up t name "restart never"
           (* with crash-only deploys there is no clean destroy to
              distinguish, so on-failure and always coincide here *)
           | Some ({ Manifest.r_policy = Manifest.On_failure | Manifest.Always; _ } as r)
             -> restart t name r))
    (Deploy.components t.deploy)

let crash t name =
  match Deploy.crash t.deploy name with
  | Error _ as e -> e
  | Ok () ->
    Lt_obs.Metrics.incr "resil/crashes";
    Lt_obs.Trace.event ~kind:"fault" ~name:"kill"
      ~attrs:(Lt_obs.Trace.attr "component" name) ();
    Ok ()

let revive t name =
  match Deploy.relaunch t.deploy name with
  | Error _ as e -> e
  | Ok () ->
    Hashtbl.remove t.gave_up name;
    Hashtbl.remove t.restart_ticks name;
    Lt_obs.Trace.event ~kind:"supervisor" ~name:"revive"
      ~attrs:(Lt_obs.Trace.attr "component" name) ();
    Ok ()

(* --- hardened calls ------------------------------------------------------ *)

let call t ~caller ~target ~service req =
  let route = Lt_obs.Trace.span_name target service in
  let b = breaker_for t route in
  if not (Breaker.admit b) then
    Error
      (App.Crashed { target; reason = Printf.sprintf "circuit open for %s" route })
  else begin
    (* a half-open breaker admits exactly one probe, no retries: the
       point is to learn cheaply, not to hammer a convalescent *)
    let attempts = if Breaker.probing b then 1 else t.cfg.retries + 1 in
    let classify result elapsed =
      match result with
      | Ok r when elapsed <= t.cfg.deadline -> `Success r
      | Ok _ ->
        Lt_obs.Metrics.incr "resil/deadline_exceeded";
        Lt_obs.Trace.event ~kind:"deadline" ~name:route
          ~iattr:("elapsed", elapsed) ();
        `Fault
          (App.Crashed
             { target;
               reason =
                 Printf.sprintf "deadline exceeded (%d > %d ticks)" elapsed
                   t.cfg.deadline })
      | Error (App.Crashed _ as e) -> `Fault e
      | Error e -> `Policy e
    in
    let rec go attempt =
      let start = Lt_obs.Trace.ambient_now () in
      let result = Deploy.call_typed t.deploy ~caller ~target ~service req in
      let elapsed = Lt_obs.Trace.ambient_now () - start in
      match classify result elapsed with
      | `Success r -> Ok r
      | `Policy e -> Error e
      | `Fault e ->
        heal t;
        if attempt + 1 < attempts then begin
          let d =
            min t.cfg.backoff_cap (t.cfg.backoff_base * (1 lsl attempt))
            + Drbg.int t.rng t.cfg.backoff_base
          in
          Lt_obs.Metrics.incr "resil/retries";
          Lt_obs.Trace.event ~kind:"retry" ~name:route ~iattr:("backoff", d) ();
          Lt_obs.Trace.advance d;
          go (attempt + 1)
        end
        else Error e
    in
    let res = go 0 in
    (match res with
     | Ok _ -> Breaker.success b
     | Error (App.Crashed _) -> Breaker.fault b
     | Error
         (App.Denied _ | App.Unknown_component _ | App.Unknown_service _
         | App.Failed _) ->
       (* policy answers are correct behaviour, not component health *)
       ());
    res
  end
