(** Chaos harness: the load engine's scenarios under seeded destruction.

    A chaos run replays a scenario's request mix through a
    {!Supervisor} while killing components at seeded instants — by
    schedule ([kill]), at random ([kill_pct]), repeatedly ([flap]), in
    the middle of a substrate crossing ([mid_ipc_pct], armed through
    {!Lateral.Fault_point}), or by cutting power to the mail scenario's
    legacy storage backend mid-mutation ([kill] on ["legacy_os"]).

    The harness then {e audits containment} rather than mere survival:

    {ul
    {- {b blast radius} — a request may only fail when the run injected
       a fault into it, one of its route's own components is down or
       given up, or its breaker is (rightly) open. Any other failure is
       a containment violation and fails the run.}
    {- {b crash consistency} — after every storage power cut the legacy
       FS is remounted and the VPFS recovered against its trusted root;
       the surviving contents must match the shadow oracle of
       acknowledged writes exactly (the in-flight write may land either
       side of the cut, never torn).}
    {- {b secrecy} — across all crashes, restarts and remounts, neither
       the SEP-held key nor any plaintext mail body may ever appear in
       the bytes the legacy stack observed.}}

    Determinism: everything — kill schedule, request mix, backoff
    jitter, recovery outcomes, tick counts — derives from [seed], so
    equal seeds produce byte-identical reports. *)

type plan = {
  kill : string list;
      (** each name is killed once, at a seeded instant; the pseudo
          component ["legacy_os"] instead cuts storage-backend power
          after a seeded number of block writes (mail only) *)
  kill_pct : int;  (** per-request chance of killing a random live component *)
  flap : string option;
      (** killed again whenever found alive — drives the restart budget
          to give-up and the route's breaker open *)
  mid_ipc_pct : int;
      (** firing percentage for the substrate-layer fault points
          ["microkernel/kill-mid-ipc"] and ["sgx/kill-mid-ecall"] *)
}

val no_chaos : plan

type report = {
  c_scenario : string;
  c_requests : int;
  c_seed : int;
  c_ok : int;
  c_failed_excused : int;    (** failed with an injected fault or dead slice *)
  c_failed_unexcused : int;  (** containment violations *)
  c_violation_detail : (int * string) list;  (** request, what escaped *)
  c_kills : (int * string) list;  (** request instant, component *)
  c_flap_kills : int;
  c_backend_cuts : int;
  c_recovered : int;         (** power cuts recovered via the redo journal *)
  c_clean : int;             (** power cuts that landed before the journal *)
  c_oracle : string;         (** ["match"], or the first divergence *)
  c_secret_leak : bool;
  c_restarts : (string * int) list;  (** per component, components with > 0 *)
  c_given_up : string list;
  c_observed : (string * string) list;
      (** the dynamic blast radius: worst impact each component was
          observed to suffer (["degraded"] — its requests failed on a
          dead or breaker-shed slice, ["restarted"], ["failed"] — dead
          or given up at end of run), sorted by name. The soundness
          property holds this inside the {!Lateral.Contain} static
          prediction for the killed components. *)
  c_router_violations : int;
  c_counters : (string * int) list;
  c_span_ticks : int;
}

(** [contained r] — no unexcused failure, oracle intact, no leak. *)
val contained : report -> bool

(** A booted scenario with its world forked at the pristine instant:
    build once with {!session}, then every [run ?session] rewinds the
    world in O(dirty) instead of redeploying. *)
type session

(** [session ~scenario ~seed ()] boots the scenario exactly as
    [run ~scenario ~seed] would (the deployment consumes seed-derived
    randomness) and forks the booted world. *)
val session :
  scenario:Lt_load.Load.scenario -> seed:int -> unit ->
  (session, string) result

(** [run ~scenario ~requests ~seed ()] — deploys the scenario, layers a
    {!Supervisor} over it and replays [requests] chaos-perturbed
    requests. Returns the report plus the tracer (for export), or an
    error when the deployment cannot boot or the plan names unknown
    components.

    With [?session] the deployment is skipped: the session's world is
    restored to its pristine fork and the saved rng mark replayed, so
    the report is byte-identical to a sessionless run — provided the
    session was built for the {e same} scenario and seed (anything else
    is an error). *)
val run :
  ?session:session ->
  ?plan:plan -> ?supervisor:Supervisor.config -> ?trace_capacity:int ->
  scenario:Lt_load.Load.scenario -> requests:int -> seed:int -> unit ->
  (report * Lt_obs.Trace.t, string) result

val render_report_text : report -> string

val render_report_json : report -> string
