open Lt_crypto
open Lateral
module Load = Lt_load.Load
module Trace = Lt_obs.Trace
module Metrics = Lt_obs.Metrics

type plan = {
  kill : string list;
  kill_pct : int;
  flap : string option;
  mid_ipc_pct : int;
}

let no_chaos = { kill = []; kill_pct = 0; flap = None; mid_ipc_pct = 0 }

type report = {
  c_scenario : string;
  c_requests : int;
  c_seed : int;
  c_ok : int;
  c_failed_excused : int;
  c_failed_unexcused : int;
  c_violation_detail : (int * string) list;
  c_kills : (int * string) list;
  c_flap_kills : int;
  c_backend_cuts : int;
  c_recovered : int;
  c_clean : int;
  c_oracle : string;
  c_secret_leak : bool;
  c_restarts : (string * int) list;
  c_given_up : string list;
  c_observed : (string * string) list;
  c_router_violations : int;
  c_counters : (string * int) list;
  c_span_ticks : int;
}

let contained r =
  r.c_failed_unexcused = 0 && r.c_oracle = "match" && not r.c_secret_leak

(* the legacy-OS storage backend is not a deployed component; killing it
   is a power cut in the block-device stack under the VPFS wrapper *)
let backend_name = "legacy_os"

let fault_sites pct =
  [ ("microkernel/kill-mid-ipc", pct); ("sgx/kill-mid-ecall", pct) ]

let validate_plan plan dep comps =
  let known name =
    name = backend_name || List.mem name comps
  in
  let bad = List.filter (fun n -> not (known n)) plan.kill in
  let bad =
    match plan.flap with
    | Some f when not (List.mem f comps) -> f :: bad
    | _ -> bad
  in
  if bad <> [] then
    Error
      (Printf.sprintf "chaos plan names unknown components: %s (known: %s)"
         (String.concat ", " bad) (String.concat ", " comps))
  else if
    List.mem backend_name plan.kill && dep.Load.d_storage = None
  then
    Error
      (Printf.sprintf "%s chaos needs the mail scenario's storage backend"
         backend_name)
  else if plan.kill_pct < 0 || plan.kill_pct > 100 then
    Error "kill-pct must be in [0, 100]"
  else if plan.mid_ipc_pct < 0 || plan.mid_ipc_pct > 100 then
    Error "mid-ipc must be in [0, 100]"
  else Ok ()

(* A chaos session: the scenario booted once and its world forked at
   the pristine instant, so every subsequent [run ?session] rewinds in
   O(dirty) instead of redeploying.  The session pins (scenario, seed)
   — the deployment itself consumed seed-derived randomness — and also
   saves the post-deploy rng mark so each run replays the exact stream
   a fresh deployment would see: session runs are byte-identical to
   sessionless ones. *)
type session = {
  s_scenario : Load.scenario;
  s_seed : int;
  s_rng : Drbg.t;
  s_rng_mark : int64;
  s_dep : Load.deployed;
  s_pristine : Lt_world.World.snap;
}

let session ~scenario ~seed () =
  let rng = Drbg.create (Int64.of_int seed) in
  let deploy_rng = Drbg.split rng in
  match Load.deploy_scenario deploy_rng scenario with
  | Error e -> Error e
  | Ok dep ->
    Ok
      { s_scenario = scenario;
        s_seed = seed;
        s_rng = rng;
        s_rng_mark = Drbg.save rng;
        s_dep = dep;
        s_pristine = Lt_world.World.fork dep.Load.d_world }

let run ?session:sess ?(plan = no_chaos)
    ?(supervisor = Supervisor.default_config) ?(trace_capacity = 65536)
    ~scenario ~requests ~seed () =
  if requests < 0 then Error "requests must be non-negative"
  else begin
    let prepared =
      match sess with
      | None ->
        let rng = Drbg.create (Int64.of_int seed) in
        let deploy_rng = Drbg.split rng in
        (match Load.deploy_scenario deploy_rng scenario with
         | Error e -> Error e
         | Ok dep -> Ok (rng, dep))
      | Some s ->
        if Load.scenario_name s.s_scenario <> Load.scenario_name scenario then
          Error "chaos session was built for a different scenario"
        else if s.s_seed <> seed then
          Error "chaos session was built for a different seed"
        else begin
          Lt_world.World.restore s.s_dep.Load.d_world s.s_pristine;
          Drbg.restore s.s_rng s.s_rng_mark;
          Ok (s.s_rng, s.s_dep)
        end
    in
    match prepared with
    | Error e -> Error e
    | Ok (rng, dep) ->
      let d = dep.Load.d_deploy in
      let comps = Deploy.components d in
      (match validate_plan plan dep comps with
       | Error e -> Error e
       | Ok () ->
         let sup =
           Supervisor.create ~config:supervisor
             ~seed:(Int64.of_int (seed + 1)) d
         in
         let tracer = Trace.create ~capacity:trace_capacity () in
         let metrics = Metrics.create () in
         let faults =
           if plan.mid_ipc_pct > 0 then
             Some (Fault_point.create ~seed:(seed + 2) (fault_sites plan.mid_ipc_pct))
           else None
         in
         let fired_total () =
           match faults with
           | None -> 0
           | Some f -> List.fold_left (fun acc (_, n) -> acc + n) 0 (Fault_point.fired f)
         in
         (* the seeded instants the scheduled kills land on *)
         let schedule =
           List.map
             (fun name -> (1 + Drbg.int rng (max requests 1), name))
             plan.kill
         in
         let deps_of target service =
           match
             List.find_opt
               (fun (t, s, _) -> t = target && s = service)
               dep.Load.d_routes
           with
           | Some (_, _, deps) -> deps
           | None -> [ target ]
         in
         let ok = ref 0 and excused = ref 0 and unexcused = ref 0 in
         (* components whose requests failed because their slice was dead
            or breaker-shed — the dynamic "degraded" observations *)
         let degraded = Hashtbl.create 16 in
         let violation_detail = ref [] in
         let kills = ref [] and flap_kills = ref 0 in
         let backend_cuts = ref 0 and recovered = ref 0 and clean = ref 0 in
         let backend_armed = ref false in
         let oracle = ref "match" in
         let oracle_note note = if !oracle = "match" then oracle := note in
         let body () =
           for i = 1 to requests do
             Trace.set_trace i;
             let injected = ref false in
             List.iter
               (fun (at, name) ->
                 if at = i then begin
                   injected := true;
                   if name = backend_name then begin
                     match dep.Load.d_storage with
                     | None -> ()
                     | Some st ->
                       (* power fails inside (or right before) the next
                          VPFS mutation's 4-write journal window *)
                       st.Load.st_crash_backend (Drbg.int rng 4);
                       backend_armed := true;
                       incr backend_cuts;
                       kills := (i, backend_name) :: !kills;
                       Trace.event ~kind:"fault" ~name:"power-cut"
                         ~attrs:(Trace.attr "backend" "legacy-fs") ()
                   end
                   else begin
                     ignore (Supervisor.crash sup name);
                     kills := (i, name) :: !kills
                   end
                 end)
               schedule;
             if plan.kill_pct > 0 && Drbg.int rng 100 < plan.kill_pct then begin
               let live = List.filter (Deploy.is_alive d) comps in
               if live <> [] then begin
                 let name = List.nth live (Drbg.int rng (List.length live)) in
                 injected := true;
                 ignore (Supervisor.crash sup name);
                 kills := (i, name) :: !kills
               end
             end;
             (match plan.flap with
              | Some f when Deploy.is_alive d f ->
                injected := true;
                incr flap_kills;
                ignore (Supervisor.crash sup f)
              | _ -> ());
             let target, service, payload = dep.Load.d_mix rng i in
             let route_deps = deps_of target service in
             if !backend_armed && List.mem "storage" route_deps then
               injected := true;
             let breaker_open =
               Supervisor.breaker_state sup ~target ~service = Supervisor.Open
             in
             let fired_before = fired_total () in
             let down_before =
               List.exists (fun c -> not (Deploy.is_alive d c)) route_deps
             in
             let r =
               Trace.with_span ~kind:"request"
                 ~name:(target ^ "." ^ service)
                 ~attrs:[ ("request", string_of_int i) ]
                 (fun () ->
                   match
                     Supervisor.call sup ~caller:None ~target ~service payload
                   with
                   | Ok _ as r -> r
                   | Error e ->
                     Trace.fail_span (App.render_call_error e);
                     Error e)
             in
             if fired_total () > fired_before then injected := true;
             (* a storage power cut surfaces as a failed store; remount,
                recover against the trusted root, audit immediately *)
             (match dep.Load.d_storage with
              | Some st when not (st.Load.st_backend_alive ()) ->
                injected := true;
                backend_armed := false;
                (match st.Load.st_recover () with
                 | Ok "recovered" -> incr recovered
                 | Ok _ -> incr clean
                 | Error e -> oracle_note (Printf.sprintf "request %d: %s" i e));
                (match st.Load.st_check () with
                 | Ok () -> ()
                 | Error e -> oracle_note (Printf.sprintf "request %d: %s" i e))
              | _ -> ());
             match r with
             | Ok _ ->
               incr ok;
               Metrics.incr "chaos/ok"
             | Error e ->
               let given_up = Supervisor.given_up sup in
               let down_now =
                 List.exists
                   (fun c ->
                     (not (Deploy.is_alive d c)) || List.mem c given_up)
                   route_deps
               in
               if down_before || down_now || breaker_open then
                 Hashtbl.replace degraded target ();
               if !injected || down_before || down_now || breaker_open then begin
                 incr excused;
                 Metrics.incr "chaos/failed_excused"
               end
               else begin
                 incr unexcused;
                 Metrics.incr "chaos/failed_unexcused";
                 violation_detail :=
                   (i,
                    Printf.sprintf "%s.%s failed with no fault in its slice: %s"
                      target service (App.render_call_error e))
                   :: !violation_detail
               end
           done;
           (* end-of-run audit: storage must be recoverable and faithful
              even if the last cut never got a follow-up request *)
           match dep.Load.d_storage with
           | None -> ()
           | Some st ->
             if not (st.Load.st_backend_alive ()) then begin
               match st.Load.st_recover () with
               | Ok "recovered" -> incr recovered
               | Ok _ -> incr clean
               | Error e -> oracle_note ("final: " ^ e)
             end;
             (match st.Load.st_check () with
              | Ok () -> ()
              | Error e -> oracle_note ("final: " ^ e))
         in
         Metrics.with_metrics metrics (fun () ->
             Trace.with_tracer tracer (fun () ->
                 match faults with
                 | None -> body ()
                 | Some f -> Fault_point.with_plan f body));
         let secret_leak =
           match dep.Load.d_storage with
           | None -> false
           | Some st ->
             st.Load.st_leaked ~needle:"sep-held-key"
             || st.Load.st_leaked ~needle:"mail(msg-"
         in
         let restarts =
           List.filter_map
             (fun c ->
               match Supervisor.restarts_of sup c with
               | 0 -> None
               | n -> Some (c, n))
             comps
         in
         (* the dynamic blast radius: the worst impact each component was
            observed to suffer, comparable against Contain.analyze radii *)
         let given_up = Supervisor.given_up sup in
         let observed =
           List.sort compare
             (List.filter_map
                (fun c ->
                  if List.mem c given_up then Some (c, "failed")
                  else if not (Deploy.is_alive d c) then
                    (* dead at end of run: permanently failed only when
                       supervision cannot bring it back — under a live
                       restart policy the respawn is merely pending *)
                    (match Deploy.manifest d c with
                     | Some m when Contain.crash_impact m = Contain.Restarted
                       ->
                       Some (c, "restarted")
                     | _ -> Some (c, "failed"))
                  else if Supervisor.restarts_of sup c > 0 then
                    Some (c, "restarted")
                  else if Hashtbl.mem degraded c then Some (c, "degraded")
                  else None)
                comps)
         in
         Ok
           ( { c_scenario = Load.scenario_name scenario;
               c_requests = requests;
               c_seed = seed;
               c_ok = !ok;
               c_failed_excused = !excused;
               c_failed_unexcused = !unexcused;
               c_violation_detail = List.rev !violation_detail;
               c_kills = List.rev !kills;
               c_flap_kills = !flap_kills;
               c_backend_cuts = !backend_cuts;
               c_recovered = !recovered;
               c_clean = !clean;
               c_oracle = !oracle;
               c_secret_leak = secret_leak;
               c_restarts = restarts;
               c_given_up = given_up;
               c_observed = observed;
               c_router_violations = List.length (Deploy.violations d);
               c_counters = Metrics.counters metrics;
               c_span_ticks = Trace.now tracer },
             tracer ))
  end

(* --- rendering ------------------------------------------------------------ *)

let render_report_text r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "lateral chaos %s: %d requests, seed %d\n" r.c_scenario
       r.c_requests r.c_seed);
  Buffer.add_string buf
    (Printf.sprintf "  ok %d, failed %d (excused %d, unexcused %d)\n"
       r.c_ok
       (r.c_failed_excused + r.c_failed_unexcused)
       r.c_failed_excused r.c_failed_unexcused);
  Buffer.add_string buf
    (Printf.sprintf "  kills: %s; flap kills %d\n"
       (if r.c_kills = [] then "-"
        else
          String.concat ", "
            (List.map (fun (i, n) -> Printf.sprintf "%s@%d" n i) r.c_kills))
       r.c_flap_kills);
  Buffer.add_string buf
    (Printf.sprintf
       "  power cuts %d (journal-recovered %d, clean %d); storage oracle: %s; secret leak: %s\n"
       r.c_backend_cuts r.c_recovered r.c_clean r.c_oracle
       (if r.c_secret_leak then "LEAKED" else "none"));
  Buffer.add_string buf
    (Printf.sprintf "  restarts: %s; given up: %s\n"
       (if r.c_restarts = [] then "-"
        else
          String.concat ", "
            (List.map (fun (c, n) -> Printf.sprintf "%s %d" c n) r.c_restarts))
       (if r.c_given_up = [] then "-" else String.concat ", " r.c_given_up));
  Buffer.add_string buf
    (Printf.sprintf "  observed radius: %s\n"
       (if r.c_observed = [] then "-"
        else
          String.concat ", "
            (List.map
               (fun (c, im) -> Printf.sprintf "%s %s" c im)
               r.c_observed)));
  Buffer.add_string buf
    (Printf.sprintf "  router violations: %d; ticks: %d\n" r.c_router_violations
       r.c_span_ticks);
  List.iter
    (fun (i, detail) ->
      Buffer.add_string buf
        (Printf.sprintf "  CONTAINMENT VIOLATION at request %d: %s\n" i detail))
    r.c_violation_detail;
  Buffer.add_string buf "counters:\n";
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" k v))
    r.c_counters;
  Buffer.add_string buf
    (Printf.sprintf "verdict: %s\n"
       (if contained r then "contained" else "NOT CONTAINED"));
  Buffer.contents buf

let render_report_json r =
  let esc = Metrics.json_escape in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"scenario\":\"%s\",\"requests\":%d,\"seed\":%d,\"ok\":%d,\"failed_excused\":%d,\"failed_unexcused\":%d,\"kills\":[%s],\"flap_kills\":%d,\"backend_cuts\":%d,\"recovered\":%d,\"clean\":%d,\"oracle\":\"%s\",\"secret_leak\":%b,\"restarts\":{%s},\"given_up\":[%s],\"observed\":{%s},\"router_violations\":%d,\"span_ticks\":%d,\"violations\":[%s],\"contained\":%b,\"counters\":{"
       (esc r.c_scenario) r.c_requests r.c_seed r.c_ok r.c_failed_excused
       r.c_failed_unexcused
       (String.concat ","
          (List.map
             (fun (i, n) -> Printf.sprintf "{\"at\":%d,\"component\":\"%s\"}" i (esc n))
             r.c_kills))
       r.c_flap_kills r.c_backend_cuts r.c_recovered r.c_clean (esc r.c_oracle)
       r.c_secret_leak
       (String.concat ","
          (List.map
             (fun (c, n) -> Printf.sprintf "\"%s\":%d" (esc c) n)
             r.c_restarts))
       (String.concat ","
          (List.map (fun c -> "\"" ^ esc c ^ "\"") r.c_given_up))
       (String.concat ","
          (List.map
             (fun (c, im) -> Printf.sprintf "\"%s\":\"%s\"" (esc c) (esc im))
             r.c_observed))
       r.c_router_violations r.c_span_ticks
       (String.concat ","
          (List.map
             (fun (i, detail) ->
               Printf.sprintf "{\"at\":%d,\"detail\":\"%s\"}" i (esc detail))
             r.c_violation_detail))
       (contained r));
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (esc k) v))
    r.c_counters;
  Buffer.add_string buf "}}\n";
  Buffer.contents buf
