type state = Closed | Open | Half_open

type t = {
  b_route : string;
  b_prefix : string;
  b_threshold : int;
  b_cooldown : int;
  mutable b_state : state;
  mutable b_fails : int;  (* consecutive faults while closed *)
  mutable b_opened : int; (* tick the breaker last opened *)
}

let create ?(prefix = "resil") ~threshold ~cooldown route =
  { b_route = route;
    b_prefix = prefix;
    b_threshold = threshold;
    b_cooldown = cooldown;
    b_state = Closed;
    b_fails = 0;
    b_opened = 0 }

let state b = b.b_state

let route b = b.b_route

let event b st =
  Lt_obs.Trace.event ~kind:"breaker" ~name:b.b_route
    ~attrs:(Lt_obs.Trace.attr "state" st) ()

let open_ b =
  b.b_state <- Open;
  b.b_opened <- Lt_obs.Trace.ambient_now ();
  Lt_obs.Metrics.incr (b.b_prefix ^ "/breaker_open");
  event b "open"

let admit b =
  (match b.b_state with
   | Open when Lt_obs.Trace.ambient_now () - b.b_opened >= b.b_cooldown ->
     b.b_state <- Half_open;
     event b "half-open"
   | _ -> ());
  match b.b_state with
  | Open ->
    Lt_obs.Metrics.incr (b.b_prefix ^ "/breaker_fastfail");
    event b "fast-fail";
    false
  | Closed | Half_open -> true

let probing b = b.b_state = Half_open

let success b =
  b.b_fails <- 0;
  if b.b_state = Half_open then begin
    b.b_state <- Closed;
    Lt_obs.Metrics.incr (b.b_prefix ^ "/breaker_close");
    event b "closed"
  end

let fault b =
  match b.b_state with
  | Half_open -> open_ b
  | Closed ->
    b.b_fails <- b.b_fails + 1;
    if b.b_fails >= b.b_threshold then open_ b
  | Open -> ()
