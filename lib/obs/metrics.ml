(* Counters and log2-bucketed histograms. Buckets: index 0 holds the
   value 0 and bucket i >= 1 holds [2^(i-1), 2^i - 1], which covers the
   whole non-negative int range in 63 buckets and makes the quantile
   estimate an interval the exact order statistic provably lies in. *)

let bucket_count = 64

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
  buckets : int array;
}

(* Hot-path caches for the per-span feed from {!Trace}. Group and name
   strings arrive interned (literals at call sites, {!Trace.span_name}),
   so steady-state lookups are pointer-equality scans over short lists:
   no allocation, no hashing. Structural fallbacks keep the lists
   bounded by distinct contents when a caller passes fresh strings. *)

type gcounter = { gc_name : string; gc_ref : int ref }

type ghist = { gh_name : string; gh_hist : hist }

type group = {
  g_key : string;
  mutable g_counters : gcounter list;
  mutable g_hists : ghist list;
}

type t = {
  m_counters : (string, int ref) Hashtbl.t;
  m_hists : (string, hist) Hashtbl.t;
  mutable m_groups : group list;
}

let create () =
  { m_counters = Hashtbl.create 32; m_hists = Hashtbl.create 32; m_groups = [] }

(* --- ambient registry --------------------------------------------------- *)

let current : t option ref = ref None

let install t = current := Some t

let uninstall () = current := None

let active () = !current

let with_metrics t f =
  let prev = !current in
  current := Some t;
  match f () with
  | v ->
    current := prev;
    v
  | exception e ->
    current := prev;
    raise e

(* --- reporting ---------------------------------------------------------- *)

let incr ?(by = 1) key =
  match !current with
  | None -> ()
  | Some t ->
    (match Hashtbl.find_opt t.m_counters key with
     | Some r -> r := !r + by
     | None -> Hashtbl.replace t.m_counters key (ref by))

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* 1 + floor(log2 v) *)
    let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
    go 0 v
  end

let bucket_bounds i =
  if i = 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

let hist_of t key =
  match Hashtbl.find_opt t.m_hists key with
  | Some h -> h
  | None ->
    let h = { h_count = 0; h_sum = 0; h_max = 0; buckets = Array.make bucket_count 0 } in
    Hashtbl.replace t.m_hists key h;
    h

let hist_add h ticks =
  let v = max 0 ticks in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let observe ~key ticks =
  match !current with
  | None -> ()
  | Some t -> hist_add (hist_of t key) ticks

let group_of t key =
  let rec phys = function
    | g :: _ when g.g_key == key -> Some g
    | _ :: tl -> phys tl
    | [] -> None
  in
  match phys t.m_groups with
  | Some g -> g
  | None ->
    (match List.find_opt (fun g -> g.g_key = key) t.m_groups with
     | Some g -> g
     | None ->
       let g = { g_key = key; g_counters = []; g_hists = [] } in
       t.m_groups <- g :: t.m_groups;
       g)

let incr_in t ~group name =
  let g = group_of t group in
  let rec phys = function
    | c :: _ when c.gc_name == name -> Some c
    | _ :: tl -> phys tl
    | [] -> None
  in
  match phys g.g_counters with
  | Some c -> c.gc_ref := !(c.gc_ref) + 1
  | None ->
    (match List.find_opt (fun c -> c.gc_name = name) g.g_counters with
     | Some c -> c.gc_ref := !(c.gc_ref) + 1
     | None ->
       let key = group ^ "/" ^ name in
       let r =
         match Hashtbl.find_opt t.m_counters key with
         | Some r -> r
         | None ->
           let r = ref 0 in
           Hashtbl.replace t.m_counters key r;
           r
       in
       r := !r + 1;
       g.g_counters <- { gc_name = name; gc_ref = r } :: g.g_counters)

let observe_in t ~group ~name ticks =
  let g = group_of t group in
  let rec phys = function
    | e :: _ when e.gh_name == name -> Some e.gh_hist
    | _ :: tl -> phys tl
    | [] -> None
  in
  let h =
    match phys g.g_hists with
    | Some h -> h
    | None ->
      (match List.find_opt (fun e -> e.gh_name = name) g.g_hists with
       | Some e -> e.gh_hist
       | None ->
         let h = hist_of t (group ^ "/" ^ name) in
         g.g_hists <- { gh_name = name; gh_hist = h } :: g.g_hists;
         h)
  in
  hist_add h ticks

let incr_grouped ~group name =
  match !current with None -> () | Some t -> incr_in t ~group name

let observe_grouped ~group ~name ticks =
  match !current with None -> () | Some t -> observe_in t ~group ~name ticks

(* the whole per-span feed in one registry resolution: a spans/<kind>
   counter, a <kind>/<name> latency histogram, and — when the span is
   tagged with a substrate — a substrate/<s> histogram *)
let observe_span ~kind ~name ~attrs ticks =
  match !current with
  | None -> ()
  | Some t ->
    incr_in t ~group:"spans" kind;
    observe_in t ~group:kind ~name ticks;
    (match List.assoc_opt "substrate" attrs with
     | Some s -> observe_in t ~group:"substrate" ~name:s ticks
     | None -> ())

(* --- reading ------------------------------------------------------------ *)

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.m_counters []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let hist_quantile_bounds h q =
  if h.h_count = 0 || q <= 0.0 || q > 1.0 then None
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.h_count))) in
    let rank = min rank h.h_count in
    let rec go i seen =
      if i >= bucket_count then None
      else begin
        let seen = seen + h.buckets.(i) in
        if seen >= rank then begin
          let lo, hi = bucket_bounds i in
          Some (lo, min hi h.h_max)
        end
        else go (i + 1) seen
      end
    in
    go 0 0
  end

type summary = {
  s_count : int;
  s_sum : int;
  s_max : int;
  s_p50 : int;
  s_p95 : int;
  s_p99 : int;
}

let summary_of h =
  let p q = match hist_quantile_bounds h q with Some (_, hi) -> hi | None -> 0 in
  { s_count = h.h_count;
    s_sum = h.h_sum;
    s_max = h.h_max;
    s_p50 = p 0.50;
    s_p95 = p 0.95;
    s_p99 = p 0.99 }

let summaries t =
  Hashtbl.fold (fun k h acc -> (k, summary_of h) :: acc) t.m_hists []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let quantile_bounds t key q =
  match Hashtbl.find_opt t.m_hists key with
  | None -> None
  | Some h -> hist_quantile_bounds h q

(* --- rendering ---------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_text t =
  let buf = Buffer.create 512 in
  let cs = counters t in
  if cs <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" k v)) cs
  end;
  let hs = summaries t in
  if hs <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "histograms (ticks):\n  %-40s %8s %8s %8s %8s %8s\n" "key"
         "count" "p50" "p95" "p99" "max");
    List.iter
      (fun (k, s) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-40s %8d %8d %8d %8d %8d\n" k s.s_count s.s_p50
             s.s_p95 s.s_p99 s.s_max))
      hs
  end;
  Buffer.contents buf

let render_json t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape k) v))
    (counters t);
  Buffer.add_string buf "},\"histograms\":{";
  List.iteri
    (fun i (k, s) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"sum\":%d,\"p50\":%d,\"p95\":%d,\"p99\":%d,\"max\":%d}"
           (json_escape k) s.s_count s.s_sum s.s_p50 s.s_p95 s.s_p99 s.s_max))
    (summaries t);
  Buffer.add_string buf "}}";
  Buffer.contents buf
