(** Causal tracing across the runtime stack.

    A {!t} is a tracer: a bounded ring buffer of {!span}s plus a logical
    clock in {e simulated ticks}. Instrumented code (the deployment
    router, the substrate adapters, the microkernel IPC path, the
    network gateway) reports through the ambient tracer installed with
    {!install}; when none is installed every instrumentation point costs
    one reference read, so tracing can stay compiled into hot paths.

    Spans are causally linked: {!with_span} nests, so a span opened
    while another is running records that span as its parent — the
    ecall a routed component call turns into is a child of the call,
    which is a child of the request that triggered it. Spans are
    recorded on {e completion}; because children complete before their
    parents, dropping the oldest records when the ring is full can
    never orphan a surviving span (its parent was recorded later).

    Exports: Chrome trace-event JSON (open in [chrome://tracing] or
    Perfetto) and an indented text tree. Ticks are logical — one per
    span boundary or event, plus whatever {!advance} burns — which
    makes identical runs produce byte-identical exports. *)

type span = {
  sp_trace : int;          (** trace (request) the span belongs to *)
  sp_id : int;             (** unique, increasing in creation order *)
  sp_parent : int option;  (** creating span, [None] for roots *)
  sp_kind : string;        (** "request", "call", "invoke", "ecall", "smc", "ipc", ... *)
  sp_name : string;        (** e.g. [component.service] or an endpoint *)
  sp_attrs : (string * string) list;
  sp_start : int;          (** ticks *)
  sp_end : int;
  sp_status : string;      (** "ok" or a failure detail *)
}

type t

(** [create ?capacity ()] — ring buffer holding at most [capacity]
    completed spans (default 65536, min 1). *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** {2 Ambient tracer} *)

val install : t -> unit

val uninstall : unit -> unit

val active : unit -> t option

(** [enabled ()] — allocation-free [active () <> None], for fast paths
    that branch on tracing without boxing an option. *)
val enabled : unit -> bool

(** [with_tracer t f] installs [t] for the extent of [f], restoring the
    previous tracer afterwards (also on exceptions). *)
val with_tracer : t -> (unit -> 'a) -> 'a

(** {2 Interning}

    The ring retains span names and attribute lists, so hot call sites
    should not rebuild them per call. Both caches are global and bounded
    by the set of distinct pairs ever requested. *)

(** [span_name comp svc] — the interned ["comp.svc"]. *)
val span_name : string -> string -> string

(** [attr k v] — the interned singleton [[ (k, v) ]]. *)
val attr : string -> string -> (string * string) list

(** {2 Recording (no-ops without an installed tracer)} *)

(** [set_trace id] — trace id given to subsequently opened {e root}
    spans; nested spans inherit their parent's. The load engine sets
    this to the request number. *)
val set_trace : int -> unit

(** [advance n] burns [n] logical ticks (fault-injection delay). *)
val advance : int -> unit

(** [ambient_now ()] — the installed tracer's clock, 0 when none is
    installed. Deadlines and restart windows measure against this, so
    resilience decisions are as deterministic as the traces. *)
val ambient_now : unit -> int

(** [with_span ?attrs ~kind ~name f] runs [f] inside a new span. The
    span's status is "ok" unless {!fail_span} was called or [f] raised
    (the exception is recorded and re-raised). Completion also feeds the
    ambient {!Metrics} registry: a [spans/<kind>] counter, a
    [<kind>/<name>] latency sample, and a [substrate/<name>] latency
    sample when a ["substrate"] attribute is present. *)
val with_span :
  ?attrs:(string * string) list -> kind:string -> name:string ->
  (unit -> 'a) -> 'a

(** [fail_span detail] marks the innermost open span as failed. *)
val fail_span : string -> unit

(** [event ?attrs ?iattr ~kind ~name ()] records an instantaneous span
    (one tick, same causal linking). [iattr] is one integer attribute
    stored unboxed in the ring — per-message payloads like an IPC badge
    cost no allocation and surface in {!span.sp_attrs} (last, rendered
    in decimal) only when the ring is read. *)
val event :
  ?attrs:(string * string) list -> ?iattr:string * int -> kind:string ->
  name:string -> unit -> unit

(** {2 Reading and exporting} *)

val now : t -> int

val spans : t -> span list
(** surviving spans, oldest-recorded first *)

val recorded : t -> int
(** total spans ever completed, including dropped ones *)

val dropped : t -> int

(** Chrome trace-event JSON: an array of "X" (complete) events, [ts]
    and [dur] in ticks (rendered as microseconds by viewers), [tid] =
    trace id, span/parent ids under [args]. Deterministic: sorted by
    start tick, then span id. *)
val export_json : t -> string

(** Indented per-trace text tree. *)
val export_text : t -> string
