type span = {
  sp_trace : int;
  sp_id : int;
  sp_parent : int option;
  sp_kind : string;
  sp_name : string;
  sp_attrs : (string * string) list;
  sp_start : int;
  sp_end : int;
  sp_status : string;
}

(* an open (not yet completed) span on the dynamic stack *)
type open_span = {
  os_trace : int;
  os_id : int;
  os_parent : int option;
  os_kind : string;
  os_name : string;
  os_attrs : (string * string) list;
  os_start : int;
  mutable os_status : string;
}

(* The ring is struct-of-arrays: recording a completed span is a few
   array stores and allocates nothing, and the int fields are unboxed so
   the GC never scans or promotes them. (An earlier span-record Queue
   spent more time promoting retained records out of the minor heap than
   the traced workload spent working — the layout is the difference
   between ~15% and ~3% overhead on the Deploy.call path.) The five int
   fields share one stride-6 array so a record touches one or two cache
   lines for all of them, not six. Point events can carry one integer
   attribute in the unboxed [ival] column (key in [r_ikey]) so a
   per-message payload like an IPC badge costs no allocation. *)
let ints_per_span = 6 (* trace, id, parent, start, end, ival *)

type t = {
  cap : int;
  r_ints : int array; (* [i*6 ..] = trace, id, parent (0 = root), start, end, ival *)
  r_kind : string array;
  r_name : string array;
  r_attrs : (string * string) list array;
  r_ikey : string array; (* "" = no int attribute *)
  r_status : string array;
  mutable head : int;   (* next write slot *)
  mutable len : int;
  mutable stack : open_span list;
  mutable clock : int;
  mutable next_id : int;
  mutable cur_trace : int;
  mutable n_recorded : int;
  mutable n_dropped : int;
}

let create ?(capacity = 65536) () =
  let cap = max 1 capacity in
  { cap;
    r_ints = Array.make (cap * ints_per_span) 0;
    r_kind = Array.make cap "";
    r_name = Array.make cap "";
    r_attrs = Array.make cap [];
    r_ikey = Array.make cap "";
    r_status = Array.make cap "";
    head = 0;
    len = 0;
    stack = [];
    clock = 0;
    next_id = 1;
    cur_trace = 0;
    n_recorded = 0;
    n_dropped = 0 }

let capacity t = t.cap

(* --- ambient tracer ------------------------------------------------------ *)

let current : t option ref = ref None

let install t = current := Some t

let uninstall () = current := None

let active () = !current

(* allocation-free check for fast paths: [active] boxes nothing either,
   but pattern-matching here keeps the caller honest *)
let enabled () = match !current with None -> false | Some _ -> true

let with_tracer t f =
  let prev = !current in
  current := Some t;
  match f () with
  | v ->
    current := prev;
    v
  | exception e ->
    current := prev;
    raise e

(* --- recording ----------------------------------------------------------- *)

(* Interning: the ring retains span names and attrs, so building them
   fresh per call would promote one short-lived string (or list) per
   span out of the minor heap. Both caches are bounded by the set of
   distinct (component, service) / (key, value) pairs the app uses. *)

let names : (string * string, string) Hashtbl.t = Hashtbl.create 64

let span_name comp svc =
  let key = (comp, svc) in
  match Hashtbl.find_opt names key with
  | Some s -> s
  | None ->
    let s = comp ^ "." ^ svc in
    Hashtbl.replace names key s;
    s

let attrs1 : (string * string, (string * string) list) Hashtbl.t = Hashtbl.create 64

let attr k v =
  let key = (k, v) in
  match Hashtbl.find_opt attrs1 key with
  | Some l -> l
  | None ->
    let l = [ (k, v) ] in
    Hashtbl.replace attrs1 key l;
    l

let set_trace id = match !current with None -> () | Some t -> t.cur_trace <- id

let advance n =
  match !current with None -> () | Some t -> t.clock <- t.clock + max 0 n

let ambient_now () = match !current with None -> 0 | Some t -> t.clock

let record t ~trace ~id ~parent ~kind ~name ~attrs ~ikey ~ival ~start ~stop
    ~status =
  let i = t.head in
  let b = i * ints_per_span in
  t.r_ints.(b) <- trace;
  t.r_ints.(b + 1) <- id;
  t.r_ints.(b + 2) <- parent;
  t.r_ints.(b + 3) <- start;
  t.r_ints.(b + 4) <- stop;
  t.r_ints.(b + 5) <- ival;
  t.r_kind.(i) <- kind;
  t.r_name.(i) <- name;
  t.r_attrs.(i) <- attrs;
  t.r_ikey.(i) <- ikey;
  t.r_status.(i) <- status;
  t.head <- (if i + 1 = t.cap then 0 else i + 1);
  if t.len < t.cap then t.len <- t.len + 1 else t.n_dropped <- t.n_dropped + 1;
  t.n_recorded <- t.n_recorded + 1;
  (* feed the ambient metrics registry, if any *)
  Metrics.observe_span ~kind ~name ~attrs (stop - start)

let open_span t ~kind ~name ~attrs =
  t.clock <- t.clock + 1;
  let id = t.next_id in
  t.next_id <- id + 1;
  let parent, trace =
    match t.stack with
    | os :: _ -> (Some os.os_id, os.os_trace)
    | [] -> (None, t.cur_trace)
  in
  let os =
    { os_trace = trace;
      os_id = id;
      os_parent = parent;
      os_kind = kind;
      os_name = name;
      os_attrs = attrs;
      os_start = t.clock;
      os_status = "ok" }
  in
  t.stack <- os :: t.stack;
  os

let close_span t os =
  (match t.stack with _ :: tl -> t.stack <- tl | [] -> ());
  t.clock <- t.clock + 1;
  record t ~trace:os.os_trace ~id:os.os_id
    ~parent:(match os.os_parent with None -> 0 | Some p -> p)
    ~kind:os.os_kind ~name:os.os_name ~attrs:os.os_attrs ~ikey:"" ~ival:0
    ~start:os.os_start ~stop:t.clock ~status:os.os_status

let with_span ?(attrs = []) ~kind ~name f =
  match !current with
  | None -> f ()
  | Some t ->
    let os = open_span t ~kind ~name ~attrs in
    (match f () with
     | v ->
       close_span t os;
       v
     | exception e ->
       if os.os_status = "ok" then
         os.os_status <- "exn: " ^ Printexc.to_string e;
       close_span t os;
       raise e)

let fail_span detail =
  match !current with
  | None -> ()
  | Some t ->
    (match t.stack with
     | os :: _ -> os.os_status <- detail
     | [] -> ())

let event ?(attrs = []) ?iattr ~kind ~name () =
  match !current with
  | None -> ()
  | Some t ->
    (* a point span: record directly, skipping the open-span stack *)
    t.clock <- t.clock + 1;
    let id = t.next_id in
    t.next_id <- id + 1;
    let parent, trace =
      match t.stack with
      | os :: _ -> (os.os_id, os.os_trace)
      | [] -> (0, t.cur_trace)
    in
    let ikey, ival = match iattr with None -> ("", 0) | Some kv -> kv in
    record t ~trace ~id ~parent ~kind ~name ~attrs ~ikey ~ival ~start:t.clock
      ~stop:t.clock ~status:"ok"

(* --- reading ------------------------------------------------------------- *)

let now t = t.clock

(* reconstruct span records from the ring, oldest-recorded first *)
let spans t =
  List.init t.len (fun j ->
      let i = (t.head - t.len + j + t.cap) mod t.cap in
      let b = i * ints_per_span in
      let attrs =
        if t.r_ikey.(i) = "" then t.r_attrs.(i)
        else t.r_attrs.(i) @ [ (t.r_ikey.(i), string_of_int t.r_ints.(b + 5)) ]
      in
      { sp_trace = t.r_ints.(b);
        sp_id = t.r_ints.(b + 1);
        sp_parent = (if t.r_ints.(b + 2) = 0 then None else Some t.r_ints.(b + 2));
        sp_kind = t.r_kind.(i);
        sp_name = t.r_name.(i);
        sp_attrs = attrs;
        sp_start = t.r_ints.(b + 3);
        sp_end = t.r_ints.(b + 4);
        sp_status = t.r_status.(i) })

let recorded t = t.n_recorded

let dropped t = t.n_dropped

(* --- exports ------------------------------------------------------------- *)

let by_start t =
  List.sort
    (fun a b ->
      match Stdlib.compare a.sp_start b.sp_start with
      | 0 -> Stdlib.compare a.sp_id b.sp_id
      | c -> c)
    (spans t)

let esc = Metrics.json_escape

let export_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":1,\"tid\":%d,\"args\":{\"span_id\":%d,\"parent_id\":%s,\"status\":\"%s\""
           (esc sp.sp_name) (esc sp.sp_kind) sp.sp_start
           (sp.sp_end - sp.sp_start) sp.sp_trace sp.sp_id
           (match sp.sp_parent with None -> "null" | Some p -> string_of_int p)
           (esc sp.sp_status));
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf ",\"%s\":\"%s\"" (esc k) (esc v)))
        sp.sp_attrs;
      Buffer.add_string buf "}}")
    (by_start t);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let export_text t =
  let ordered = by_start t in
  (* depth = length of the surviving ancestor chain *)
  let depth_of = Hashtbl.create 256 in
  List.iter
    (fun sp ->
      let d =
        match sp.sp_parent with
        | None -> 0
        | Some p -> (match Hashtbl.find_opt depth_of p with Some d -> d + 1 | None -> 0)
      in
      Hashtbl.replace depth_of sp.sp_id d)
    ordered;
  let buf = Buffer.create 4096 in
  let last_trace = ref min_int in
  List.iter
    (fun sp ->
      if sp.sp_trace <> !last_trace then begin
        last_trace := sp.sp_trace;
        Buffer.add_string buf (Printf.sprintf "trace %d:\n" sp.sp_trace)
      end;
      let d = match Hashtbl.find_opt depth_of sp.sp_id with Some d -> d | None -> 0 in
      Buffer.add_string buf
        (Printf.sprintf "  %s[%d-%d] %s %s%s%s\n" (String.make (2 * d) ' ')
           sp.sp_start sp.sp_end sp.sp_kind sp.sp_name
           (if sp.sp_status = "ok" then "" else " !" ^ sp.sp_status)
           (String.concat ""
              (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) sp.sp_attrs))))
    ordered;
  if t.n_dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf "(%d older spans dropped by the %d-span ring)\n" t.n_dropped t.cap);
  Buffer.contents buf
