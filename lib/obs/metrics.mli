(** Runtime metrics: counters and log-scale latency histograms.

    A {!t} is a metrics registry. Instrumented code reports through the
    ambient registry installed with {!install} (or scoped with
    {!with_metrics}); when none is installed every reporting call is a
    single reference read — cheap enough to leave compiled into hot
    paths permanently.

    Latencies are {e simulated ticks} (see {!Trace}): histograms use
    power-of-two buckets, so a quantile estimate is a bucket interval
    [(lo, hi)] guaranteed to contain the exact order statistic. All
    output is sorted by key, so renders are deterministic. *)

type t

val create : unit -> t

(** {2 Ambient registry} *)

val install : t -> unit

val uninstall : unit -> unit

val active : unit -> t option

(** [with_metrics t f] installs [t] for the extent of [f] and restores
    the previous registry afterwards (also on exceptions). *)
val with_metrics : t -> (unit -> 'a) -> 'a

(** {2 Reporting (no-ops without an installed registry)} *)

(** [incr ?by key] bumps the counter [key] (default [by = 1]). *)
val incr : ?by:int -> string -> unit

(** [observe ~key ticks] adds one latency sample to the histogram
    [key]. Negative samples are clamped to 0. *)
val observe : key:string -> int -> unit

(** Hot-path variants used by {!Trace} on every span completion: the
    counter / histogram is named ["<group>/<name>"], but the key string
    is built once and cached under the [(group, name)] pair, so
    steady-state reporting allocates no key. *)

val incr_grouped : group:string -> string -> unit

val observe_grouped : group:string -> name:string -> int -> unit

(** [observe_span ~kind ~name ~attrs ticks] — the whole per-span feed in
    one registry resolution: bumps the [spans/<kind>] counter, adds
    [ticks] to the [<kind>/<name>] histogram, and, when [attrs] carries
    a ["substrate"] tag, to the [substrate/<s>] histogram too. *)
val observe_span :
  kind:string -> name:string -> attrs:(string * string) list -> int -> unit

(** {2 Reading} *)

val counters : t -> (string * int) list
(** sorted by key *)

type summary = {
  s_count : int;
  s_sum : int;
  s_max : int;
  s_p50 : int;  (** bucket upper bound containing the true p50 *)
  s_p95 : int;
  s_p99 : int;
}

val summaries : t -> (string * summary) list
(** sorted by key *)

(** [quantile_bounds t key q] — the inclusive interval [(lo, hi)] of the
    bucket holding the [q]-quantile (rank [ceil (q * count)]) of the
    samples observed under [key]; [hi] is additionally clamped to the
    exact maximum. [None] when [key] has no samples or [q] is outside
    (0, 1]. *)
val quantile_bounds : t -> string -> float -> (int * int) option

(** {2 Rendering} *)

val render_text : t -> string

val render_json : t -> string
(** one JSON object: [{"counters":{...},"histograms":{...}}] *)

(** [json_escape s] — minimal JSON string escaping, shared by the
    observability exporters. *)
val json_escape : string -> string
