(** Deterministic closed-loop load engine.

    [run] deploys one of the paper's scenarios onto real simulated
    substrates ({!Lateral.Deploy}), installs a fresh tracer and metrics
    registry, and replays a seeded request mix: one request at a time
    (closed loop), each a routed external call into the deployment's
    network-facing entry point, optionally perturbed by per-request
    fault injection. Everything — the request mix, the payloads, the
    fault schedule, the span ids and ticks — derives from the seed, so
    two runs with equal arguments produce byte-identical trace exports
    and reports. *)

type scenario = Mail | Meter | Cloud

val all_scenarios : scenario list

val scenario_name : scenario -> string

val scenario_of_string : string -> (scenario, string) result

(** Per-request fault injection, in percent of requests (deterministic,
    seeded). Faults are disjoint: a request suffers at most one. *)
type fault_plan = {
  drop_pct : int;        (** request never issued *)
  delay_pct : int;       (** logical-clock delay before the request *)
  compromise_pct : int;  (** an off-manifest call is attempted instead *)
}

val no_faults : fault_plan

(** {2 Deployed scenarios}

    Exposed so the chaos harness ({!Lt_resil}-side) can drive the same
    deployments request-by-request while killing components, instead of
    going through the closed loop in {!run}. *)

(** Hooks into the mail scenario's persistent storage: a real
    {!Lt_storage.Vpfs} (the §III-D trusted wrapper) over the crashable
    legacy FS, plus a shadow oracle recording every acknowledged write.
    A chaos driver cuts power after an arbitrary number of backend block
    writes — including inside the 4-write redo-journal window of one
    VPFS mutation — then remounts, recovers, and audits. *)
type storage_harness = {
  st_crash_backend : int -> unit;
      (** power fails after [n] more backend block writes *)
  st_backend_alive : unit -> bool;
  st_recover : unit -> (string, string) result;
      (** remount + crash-consistent reopen against the trusted root;
          [Ok "clean"] or [Ok "recovered"] *)
  st_check : unit -> (unit, string) result;
      (** compare the recovered VPFS against the shadow oracle *)
  st_leaked : needle:string -> bool;
      (** did the legacy stack ever observe [needle] in plaintext,
          across all remounts? *)
}

type deployed = {
  d_deploy : Lateral.Deploy.t;
  d_mix : Lt_crypto.Drbg.t -> int -> string * string * string;
      (** seeded request mix: (target, service, payload) *)
  d_probe : string option * string * string;
      (** an off-manifest probe for compromised-caller fault injection *)
  d_routes : (string * string * string list) list;
      (** each external route with the components it transits — the unit
          of blast-radius accounting for chaos runs *)
  d_storage : storage_harness option;  (** mail only *)
  d_world : Lt_world.World.t;
      (** the whole booted deployment — substrates, control plane and
          scenario harness state — as one forkable world; fork once,
          rewind per chaos schedule instead of redeploying *)
}

(** [deploy_scenario rng scenario] boots the scenario's substrates and
    components. The scenario manifests carry [restart] policies and
    [stateful] marks, so a {!Lt_resil}-style supervisor can be layered
    on directly. *)
val deploy_scenario :
  Lt_crypto.Drbg.t -> scenario -> (deployed, string) result

type report = {
  r_scenario : string;
  r_requests : int;
  r_seed : int;
  r_ok : int;               (** requests answered [Ok] *)
  r_degraded : int;         (** answered, but rate-limited at the gateway *)
  r_errors : int;           (** requests answered [Error] *)
  r_dropped : int;          (** fault: never issued *)
  r_delayed : int;          (** fault: issued after a delay *)
  r_denied_probes : int;    (** fault: off-manifest attempts, all denied *)
  r_violations : int;       (** channel violations the router recorded *)
  r_substrates : string list;  (** distinct substrates spans crossed *)
  r_spans : int;            (** spans recorded (before ring eviction) *)
  r_span_ticks : int;       (** final logical clock *)
  r_counters : (string * int) list;
  r_histograms : (string * Lt_obs.Metrics.summary) list;
}

(** [run ~scenario ~requests ~seed ()] — returns the report plus the
    tracer (for export) or an error when the deployment cannot boot.
    [trace_capacity] bounds the span ring (default 65536). *)
val run :
  ?faults:fault_plan -> ?trace_capacity:int ->
  scenario:scenario -> requests:int -> seed:int -> unit ->
  (report * Lt_obs.Trace.t, string) result

val render_report_text : report -> string

val render_report_json : report -> string
