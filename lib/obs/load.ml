open Lt_crypto
open Lateral
module Net = Lt_net.Net
module Gateway = Lt_net.Gateway
module Trace = Lt_obs.Trace
module Metrics = Lt_obs.Metrics
module Block = Lt_storage.Block
module Fs = Lt_storage.Legacy_fs
module Vpfs = Lt_storage.Vpfs
module Snap = Lt_world.Snapshottable
module D64 = Lt_world.Digest64

type scenario = Mail | Meter | Cloud

let all_scenarios = [ Mail; Meter; Cloud ]

let scenario_name = function Mail -> "mail" | Meter -> "meter" | Cloud -> "cloud"

let scenario_of_string = function
  | "mail" -> Ok Mail
  | "meter" -> Ok Meter
  | "cloud" -> Ok Cloud
  | s ->
    Error
      (Printf.sprintf "unknown scenario %S (known: %s)" s
         (String.concat ", " (List.map scenario_name all_scenarios)))

type fault_plan = { drop_pct : int; delay_pct : int; compromise_pct : int }

let no_faults = { drop_pct = 0; delay_pct = 0; compromise_pct = 0 }

type report = {
  r_scenario : string;
  r_requests : int;
  r_seed : int;
  r_ok : int;
  r_degraded : int;
  r_errors : int;
  r_dropped : int;
  r_delayed : int;
  r_denied_probes : int;
  r_violations : int;
  r_substrates : string list;
  r_spans : int;
  r_span_ticks : int;
  r_counters : (string * int) list;
  r_histograms : (string * Metrics.summary) list;
}

(* --- the deployed scenarios ---------------------------------------------- *)

(* Each scenario deploys real components on real substrates; behaviours
   are small but exercise cross-substrate chains, substrate facilities
   (sealed state) and — for the meter — the network gateway, so a load
   run produces the span mix a real serving stack would. *)

type storage_harness = {
  st_crash_backend : int -> unit;
  st_backend_alive : unit -> bool;
  st_recover : unit -> (string, string) result;
  st_check : unit -> (unit, string) result;
  st_leaked : needle:string -> bool;
}

type deployed = {
  d_deploy : Deploy.t;
  (* the seeded request mix: picks an external entry point and payload *)
  d_mix : Drbg.t -> int -> string * string * string;
  (* an off-manifest probe for compromised-caller fault injection *)
  d_probe : string option * string * string;
  (* every external route with the components it transits, the unit of
     blast-radius accounting: a chaos run may only see a route fail when
     one of its own components is down *)
  d_routes : (string * string * string list) list;
  d_storage : storage_harness option;
  (* the whole booted deployment — substrates, control plane, scenario
     harness state — as one forkable world; chaos sessions fork it once
     and rewind per schedule instead of redeploying *)
  d_world : Lt_world.World.t;
}

(* a dead dependency cascades as a typed fault carrying the true origin
   (the supervisor may heal it and retry; the report blames the crashed
   component, not whichever caller tripped over it); any other
   downstream answer fails this request only — the caller stays healthy
   and the report gets an error line *)
let call_or_err ctx ~target ~service req =
  match ctx.Deploy.call_out_typed ~target ~service req with
  | Ok r -> r
  | Error (App.Crashed { target = origin; reason }) ->
    Substrate.dep_crashed ~origin reason
  | Error e ->
    Substrate.fail
      (Printf.sprintf "%s.%s: %s" target service (App.render_call_error e))

(* The mail scenario's storage component persists through a real VPFS
   (the §III-D trusted wrapper) layered over the crashable legacy FS in
   lib/storage. The harness hooks let a chaos driver lose power after an
   arbitrary number of backend block writes — including inside the
   4-write redo-journal window of one VPFS mutation — then remount, run
   crash recovery, and audit the survivors against a shadow oracle that
   records every acknowledged write. *)
let mail_master_key = "mail-vpfs-master-key"

let make_mail_storage () =
  let dev = Block.create ~blocks:1024 in
  let fs0 = Fs.format dev in
  let v0 = Vpfs.create ~master_key:mail_master_key fs0 in
  let lfs = ref fs0 and vpfs = ref v0 in
  (* the root digest a SEP/TPM would re-seal after every acknowledged
     write; open_recover checks against it, which is what defeats
     whole-FS rollback even across power cuts *)
  let trusted_root = ref (Vpfs.root v0) in
  let past_fs = ref [ fs0 ] in
  let oracle : (string, string) Hashtbl.t = Hashtbl.create 16 in
  (* paths with a write attempted since the last clean point; a power
     cut leaves them in doubt (retries against the dead backend can pile
     several up before anyone remounts) *)
  let pending = ref [] in
  let store path data =
    pending := path :: !pending;
    match Vpfs.write !vpfs path data with
    | Ok () ->
      trusted_root := Vpfs.root !vpfs;
      Hashtbl.replace oracle path data;
      pending := List.filter (fun q -> q <> path) !pending;
      Ok ()
    | Error e -> Error (Format.asprintf "%a" Vpfs.pp_error e)
  in
  let load path =
    match Vpfs.read !vpfs path with Ok v -> Some v | Error _ -> None
  in
  let harness =
    { st_crash_backend = (fun n -> Fs.crash_after_writes !lfs n);
      st_backend_alive =
        (fun () ->
          match Fs.read !lfs "/.probe" with
          | exception Fs.Crashed -> false
          | _ -> true);
      st_recover =
        (fun () ->
          match Fs.mount dev with
          | Error e -> Error (Format.asprintf "remount: %a" Fs.pp_error e)
          | Ok fs2 ->
            (match
               Vpfs.open_recover ~master_key:mail_master_key
                 ~expected_root:!trusted_root fs2
             with
             | Error e -> Error (Format.asprintf "recover: %a" Vpfs.pp_error e)
             | Ok (v2, status) ->
               lfs := fs2;
               vpfs := v2;
               past_fs := fs2 :: !past_fs;
               trusted_root := Vpfs.root v2;
               (* each mutation in flight around the power cut either
                  became durable (its journal record survived, so
                  recovery rolled it forward) or vanished entirely;
                  whichever way each went is now the truth the oracle
                  tracks *)
               List.iter
                 (fun path ->
                   match Vpfs.read v2 path with
                   | Ok now -> Hashtbl.replace oracle path now
                   | Error _ -> Hashtbl.remove oracle path)
                 (List.sort_uniq Stdlib.compare !pending);
               pending := [];
               Ok (match status with `Clean -> "clean" | `Recovered -> "recovered")));
      st_check =
        (fun () ->
          let got = List.sort Stdlib.compare (Vpfs.list !vpfs) in
          let want =
            Hashtbl.fold (fun k _ acc -> k :: acc) oracle []
            |> List.sort Stdlib.compare
          in
          if got <> want then
            Error
              (Printf.sprintf "paths diverge: vpfs [%s] vs oracle [%s]"
                 (String.concat "; " got) (String.concat "; " want))
          else
            List.fold_left
              (fun acc path ->
                match acc with
                | Error _ -> acc
                | Ok () -> (
                  let expect = Hashtbl.find oracle path in
                  match Vpfs.read !vpfs path with
                  | Ok data when data = expect -> Ok ()
                  | Ok data ->
                    Error (Printf.sprintf "%s: got %S, oracle %S" path data expect)
                  | Error e ->
                    Error (Format.asprintf "%s: %a" path Vpfs.pp_error e)))
              (Ok ()) want);
      st_leaked =
        (fun ~needle ->
          (* every byte the legacy stack ever saw, across remounts: the
             wrapper must never have handed it plaintext *)
          List.exists (fun fs -> Fs.observed_contains fs ~needle) !past_fs) }
  in
  (* everything the closures above mutate, as one world layer: the live
     FS/VPFS instances (which carry the block device), the handles
     themselves, the trusted root, the oracle and the in-doubt list *)
  let layer =
    Snap.make ~name:"mail:storage-harness"
      ~take:(fun () ->
        Snap.save_refs
          [ (fun () -> Fs.take_snapshot !lfs);
            (fun () -> Vpfs.take_snapshot !vpfs);
            (fun () -> Snap.save_ref lfs);
            (fun () -> Snap.save_ref vpfs);
            (fun () -> Snap.save_ref trusted_root);
            (fun () -> Snap.save_ref past_fs);
            (fun () -> Snap.save_hashtbl oracle);
            (fun () -> Snap.save_ref pending) ])
      ~digest:(fun () ->
        let d = Fs.state_digest !lfs in
        let d = D64.combine d (Vpfs.state_digest !vpfs) in
        let d = D64.string d !trusted_root in
        let d = D64.int d (List.length !past_fs) in
        let d =
          Snap.digest_hashtbl ~key:(fun k -> k) ~value:(fun v -> v) oracle d
        in
        D64.list D64.string d (List.sort Stdlib.compare !pending))
  in
  (harness, store, load, layer)

(* mail: the Figure 1 slice as a live deployment. ui and composer on the
   microkernel, the protocol/content handlers in SGX enclaves, the
   keystore on the SEP — one show request crosses three substrates. *)
let deploy_mail rng =
  let ca = Rsa.generate ~bits:512 rng in
  let m1 = Lt_hw.Machine.create ~dram_pages:512 () in
  let mk, _ =
    Substrate_kernel.make m1 (Lt_kernel.Sched.Round_robin { quantum = 500 }) ()
  in
  let m2 = Lt_hw.Machine.create ~dram_pages:128 () in
  let sgx, _ = Substrate_sgx.make m2 rng ~ca_name:"intel" ~ca_key:ca () in
  let m3 = Lt_hw.Machine.create ~dram_pages:64 () in
  let sep, _, _ = Substrate_sep.make m3 rng ~device_id:"mail-sep" ~private_pages:4 in
  let substrates = [ ("microkernel", mk); ("sgx", sgx); ("sep", sep) ] in
  let storage_h, st_store, st_load, storage_layer = make_mail_storage () in
  let slot = ref 0 in
  let on_failure = Manifest.default_restart Manifest.On_failure in
  let always = Manifest.default_restart Manifest.Always in
  let components =
    [ ( Manifest.v ~name:"ui" ~provides:[ "show"; "compose" ]
          ~connects_to:
            [ Manifest.conn "imap" "fetch"; Manifest.conn "renderer" "render";
              Manifest.conn "composer" "compose" ]
          ~network_facing:true ~substrate:"microkernel" ~size_loc:6000
          ~restart:always (),
        fun ctx ~service req ->
          match service with
          | "show" ->
            let mail = call_or_err ctx ~target:"imap" ~service:"fetch" req in
            call_or_err ctx ~target:"renderer" ~service:"render" mail
          | _ -> call_or_err ctx ~target:"composer" ~service:"compose" req );
      ( Manifest.v ~name:"imap" ~provides:[ "fetch" ]
          ~connects_to:
            [ Manifest.conn "tls" "transmit"; Manifest.conn "storage" "store" ]
          ~substrate:"sgx" ~size_loc:8000 ~vulnerable:true ~restart:on_failure (),
        fun ctx ~service:_ req ->
          let _receipt = call_or_err ctx ~target:"tls" ~service:"transmit" ("FETCH " ^ req) in
          let body = "mail(" ^ req ^ ")" in
          let _ = call_or_err ctx ~target:"storage" ~service:"store" body in
          body );
      ( Manifest.v ~name:"smtp" ~provides:[ "send" ]
          ~connects_to:[ Manifest.conn "tls" "transmit" ]
          ~substrate:"sgx" ~size_loc:4000 ~vulnerable:true ~restart:on_failure (),
        fun ctx ~service:_ req ->
          call_or_err ctx ~target:"tls" ~service:"transmit" ("SEND " ^ req) );
      ( Manifest.v ~name:"tls" ~provides:[ "transmit" ]
          ~connects_to:[ Manifest.conn "keystore" "sign" ]
          ~substrate:"sgx" ~size_loc:3000 ~restart:on_failure (),
        fun ctx ~service:_ req ->
          let signature = call_or_err ctx ~target:"keystore" ~service:"sign" req in
          Printf.sprintf "sent(%s,sig=%s)" req signature );
      ( Manifest.v ~name:"keystore" ~provides:[ "sign" ] ~substrate:"sep"
          ~size_loc:800 ~stateful:true ~restart:on_failure (),
        fun ctx ~service:_ req ->
          let key =
            match ctx.Deploy.facilities.Substrate.f_load ~key:"k" with
            | Some k -> k
            | None ->
              ctx.Deploy.facilities.Substrate.f_store ~key:"k" "sep-held-key";
              "sep-held-key"
          in
          String.sub (Sha256.hex (Hmac.mac ~key req)) 0 8 );
      ( Manifest.v ~name:"renderer" ~provides:[ "render" ] ~substrate:"sgx"
          ~size_loc:25000 ~vulnerable:true ~restart:always (),
        fun _ctx ~service:_ req -> "render(" ^ req ^ ")" );
      ( Manifest.v ~name:"composer" ~provides:[ "compose" ]
          ~connects_to:[ Manifest.conn "smtp" "send" ]
          ~substrate:"microkernel" ~size_loc:5000 ~restart:on_failure (),
        fun ctx ~service:_ req ->
          call_or_err ctx ~target:"smtp" ~service:"send" req );
      ( Manifest.v ~name:"storage" ~provides:[ "store"; "load" ]
          ~connects_to:[ Manifest.conn ~vetted:true "legacyfs" "io" ]
          ~substrate:"microkernel" ~size_loc:2500 ~stateful:true
          ~restart:on_failure (),
        fun ctx ~service req ->
          match service with
          | "store" ->
            ctx.Deploy.facilities.Substrate.f_store ~key:"latest" req;
            (* journal the body through the VPFS wrapper before telling
               the legacy stack; a power cut between the two loses the
               ack, never an acknowledged write *)
            incr slot;
            let path = Printf.sprintf "/mail/%d" (!slot mod 8) in
            (match st_store path req with
             | Ok () -> ()
             | Error e -> Substrate.fail ("vpfs: " ^ e));
            call_or_err ctx ~target:"legacyfs" ~service:"io" ("W:" ^ req)
          | _ ->
            (match ctx.Deploy.facilities.Substrate.f_load ~key:"latest" with
             | Some v -> v
             | None ->
               (match st_load (Printf.sprintf "/mail/%d" (!slot mod 8)) with
                | Some v -> v
                | None -> call_or_err ctx ~target:"legacyfs" ~service:"io" "R:latest")) );
      ( Manifest.v ~name:"legacyfs" ~provides:[ "io" ] ~substrate:"microkernel"
          ~size_loc:30000 ~vulnerable:true ~restart:always (),
        fun _ctx ~service:_ req -> "fs-ack(" ^ req ^ ")" ) ]
  in
  match Deploy.deploy ~substrates components with
  | Error e -> Error ("mail deployment: " ^ e)
  | Ok d ->
    let harness_layer =
      Snap.make ~name:"mail:harness"
        ~take:(fun () -> Snap.save_ref slot)
        ~digest:(fun () -> D64.int D64.basis !slot)
    in
    Ok
      { d_deploy = d;
        d_world = Deploy.world ~extra:[ storage_layer; harness_layer ] d;
        d_mix =
          (fun rng i ->
            if Drbg.int rng 100 < 60 then
              ("ui", "show", Printf.sprintf "msg-%d" i)
            else ("ui", "compose", Printf.sprintf "draft-%d" i));
        d_probe = (Some "renderer", "keystore", "sign");
        d_routes =
          [ ("ui", "show",
             [ "ui"; "imap"; "tls"; "keystore"; "storage"; "legacyfs"; "renderer" ]);
            ("ui", "compose", [ "ui"; "composer"; "smtp"; "tls"; "keystore" ]) ];
        d_storage = Some storage_h }

(* meter: the Figure 3 appliance under sustained polling. The reading
   is produced inside the TrustZone secure world, leaves the appliance
   through the token-bucket gateway (the only NIC holder), and lands in
   the utility's SGX anonymizer. Sustained load overruns the bucket, so
   rate-limiting shows up in the report as degraded requests. *)
let deploy_meter rng =
  let ca = Rsa.generate ~bits:512 rng in
  let tz_vendor = Rsa.generate ~bits:512 rng in
  let m1 = Lt_hw.Machine.create ~dram_pages:512 () in
  let mk, _ =
    Substrate_kernel.make m1 (Lt_kernel.Sched.Round_robin { quantum = 500 }) ()
  in
  let m2 = Lt_hw.Machine.create ~dram_pages:64 () in
  Lt_hw.Fuse.program m2.Lt_hw.Machine.fuses ~name:"meter-key"
    ~visibility:Lt_hw.Fuse.Secure_only (Drbg.bytes rng 32);
  let image = Lt_tpm.Boot.sign_stage tz_vendor ~name:"tz-os" "meter-secure-os-v1" in
  match
    Substrate_trustzone.make m2 ~vendor:tz_vendor.Rsa.pub ~image
      ~device_id:"meter-0001" ~device_key_name:"meter-key" ~secure_pages:4
  with
  | Error e -> Error ("meter deployment: trustzone boot: " ^ e)
  | Ok (tz, _) ->
    let m3 = Lt_hw.Machine.create ~dram_pages:128 () in
    let sgx, _ = Substrate_sgx.make m3 rng ~ca_name:"intel" ~ca_key:ca () in
    let substrates = [ ("microkernel", mk); ("trustzone", tz); ("sgx", sgx) ] in
    let net = Net.create () in
    (* fresh net: these cannot collide *)
    List.iter
      (fun a -> match Net.register net a with Ok () | Error `Duplicate_addr -> ())
      [ "collector"; "utility" ];
    let gw = Gateway.create ~whitelist:[ "utility" ] ~tokens_per_tick:0.5 ~burst:5.0 in
    let poll_tick = ref 0 in
    let components =
      [ ( Manifest.v ~name:"collector" ~provides:[ "poll" ]
            ~connects_to:
              [ Manifest.conn "meter" "read"; Manifest.conn "utility" "submit" ]
            ~network_facing:true ~substrate:"microkernel" ~size_loc:3000
            ~restart:(Manifest.default_restart Manifest.Always) (),
          fun ctx ~service:_ _req ->
            let reading = call_or_err ctx ~target:"meter" ~service:"read" "" in
            incr poll_tick;
            match
              Gateway.submit gw net ~now:!poll_tick ~src:"collector" ~dst:"utility"
                reading
            with
            | Gateway.Blocked_destination ->
              Substrate.fail "gateway blocked the utility"
            | Gateway.Rate_limited -> "rate-limited:" ^ reading
            | Gateway.Forwarded ->
              (match Net.recv net "utility" with
               | None -> Substrate.fail "reading lost in transit"
               | Some p ->
                 call_or_err ctx ~target:"utility" ~service:"submit" p.Net.payload) );
        ( Manifest.v ~name:"meter" ~provides:[ "read" ] ~substrate:"trustzone"
            ~size_loc:2000 ~stateful:true
            ~restart:(Manifest.default_restart Manifest.Always) (),
          fun ctx ~service:_ _req ->
            let n =
              match ctx.Deploy.facilities.Substrate.f_load ~key:"kwh" with
              | Some v -> int_of_string v + 3
              | None -> 3
            in
            ctx.Deploy.facilities.Substrate.f_store ~key:"kwh" (string_of_int n);
            Printf.sprintf "customer=4711;kwh=%d" n );
        ( Manifest.v ~name:"utility" ~provides:[ "submit" ]
            ~connects_to:[ Manifest.conn ~vetted:true "anonymizer" "ingest" ]
            ~substrate:"microkernel" ~size_loc:9000
            ~restart:(Manifest.default_restart Manifest.On_failure) (),
          fun ctx ~service:_ reading ->
            call_or_err ctx ~target:"anonymizer" ~service:"ingest" reading );
        ( Manifest.v ~name:"anonymizer" ~provides:[ "ingest" ] ~substrate:"sgx"
            ~size_loc:1200 ~stateful:true
            ~restart:(Manifest.default_restart Manifest.On_failure) (),
          fun ctx ~service:_ reading ->
            (* strip the customer id, bill only the kwh figure *)
            let kwh =
              match String.index_opt reading ';' with
              | Some i -> String.sub reading (i + 1) (String.length reading - i - 1)
              | None -> reading
            in
            let rows =
              match ctx.Deploy.facilities.Substrate.f_load ~key:"rows" with
              | Some v -> int_of_string v + 1
              | None -> 1
            in
            ctx.Deploy.facilities.Substrate.f_store ~key:"rows" (string_of_int rows);
            Printf.sprintf "billed(%s,rows=%d)" kwh rows ) ]
    in
    (match Deploy.deploy ~substrates components with
     | Error e -> Error ("meter deployment: " ^ e)
     | Ok d ->
       let harness_layer =
         Snap.make ~name:"meter:harness"
           ~take:(fun () ->
             Snap.save_refs
               [ (fun () -> Net.take_snapshot net);
                 (fun () -> Gateway.take_snapshot gw);
                 (fun () -> Snap.save_ref poll_tick) ])
           ~digest:(fun () ->
             let d = Net.state_digest net in
             let d = D64.combine d (Gateway.state_digest gw) in
             D64.int d !poll_tick)
       in
       Ok
         { d_deploy = d;
           d_world = Deploy.world ~extra:[ harness_layer ] d;
           d_mix = (fun _rng i -> ("collector", "poll", Printf.sprintf "poll-%d" i));
           d_probe = (Some "meter", "anonymizer", "ingest");
           d_routes =
             [ ("collector", "poll",
                [ "collector"; "meter"; "utility"; "anonymizer" ]) ];
           d_storage = None })

(* cloud: the §II-B outsourced computation under job load — the
   untrusted host forwards every job into the customer enclave. *)
let deploy_cloud rng =
  let ca = Rsa.generate ~bits:512 rng in
  let m1 = Lt_hw.Machine.create ~dram_pages:512 () in
  let mk, _ =
    Substrate_kernel.make m1 (Lt_kernel.Sched.Round_robin { quantum = 500 }) ()
  in
  let m2 = Lt_hw.Machine.create ~dram_pages:256 () in
  let sgx, _ = Substrate_sgx.make m2 rng ~ca_name:"intel" ~ca_key:ca () in
  let substrates = [ ("microkernel", mk); ("sgx", sgx) ] in
  let components =
    [ ( Manifest.v ~name:"host" ~provides:[ "submit" ] ~network_facing:true
          ~vulnerable:true
          ~connects_to:[ Manifest.conn ~vetted:true "enclave" "ecall" ]
          ~substrate:"microkernel" ~size_loc:50_000
          ~restart:(Manifest.default_restart Manifest.Always) (),
        fun ctx ~service:_ job ->
          call_or_err ctx ~target:"enclave" ~service:"ecall" job );
      ( Manifest.v ~name:"enclave" ~provides:[ "ecall" ] ~substrate:"sgx"
          ~size_loc:1500 ~stateful:true
          ~restart:(Manifest.default_restart Manifest.On_failure) (),
        fun ctx ~service:_ job ->
          let jobs =
            match ctx.Deploy.facilities.Substrate.f_load ~key:"jobs" with
            | Some v -> int_of_string v + 1
            | None -> 1
          in
          ctx.Deploy.facilities.Substrate.f_store ~key:"jobs" (string_of_int jobs);
          let digest = String.sub (Sha256.hex (Hmac.mac ~key:"corpus" job)) 0 8 in
          Printf.sprintf "result(%s,jobs=%d)" digest jobs ) ]
  in
  match Deploy.deploy ~substrates components with
  | Error e -> Error ("cloud deployment: " ^ e)
  | Ok d ->
    Ok
      { d_deploy = d;
        d_world = Deploy.world d;
        d_mix = (fun _rng i -> ("host", "submit", Printf.sprintf "job-%d" i));
        d_probe = (None, "enclave", "ecall");
        d_routes = [ ("host", "submit", [ "host"; "enclave" ]) ];
        d_storage = None }

let deploy_scenario rng = function
  | Mail -> deploy_mail rng
  | Meter -> deploy_meter rng
  | Cloud -> deploy_cloud rng

(* --- the closed loop ------------------------------------------------------ *)

type fault = F_none | F_drop | F_delay of int | F_compromise

let pick_fault rng plan =
  let roll = Drbg.int rng 100 in
  if roll < plan.drop_pct then F_drop
  else if roll < plan.drop_pct + plan.delay_pct then F_delay (1 + Drbg.int rng 16)
  else if roll < plan.drop_pct + plan.delay_pct + plan.compromise_pct then
    F_compromise
  else F_none

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let run ?(faults = no_faults) ?(trace_capacity = 65536) ~scenario ~requests ~seed () =
  if requests < 0 then Error "requests must be non-negative"
  else if faults.drop_pct < 0 || faults.delay_pct < 0 || faults.compromise_pct < 0
          || faults.drop_pct + faults.delay_pct + faults.compromise_pct > 100
  then Error "fault percentages must be non-negative and sum to at most 100"
  else begin
    let rng = Drbg.create (Int64.of_int seed) in
    let deploy_rng = Drbg.split rng in
    match deploy_scenario deploy_rng scenario with
    | Error e -> Error e
    | Ok dep ->
      let tracer = Trace.create ~capacity:trace_capacity () in
      let metrics = Metrics.create () in
      let ok = ref 0 and degraded = ref 0 and errors = ref 0 in
      let dropped = ref 0 and delayed = ref 0 and denied = ref 0 in
      Metrics.with_metrics metrics (fun () ->
          Trace.with_tracer tracer (fun () ->
              for i = 1 to requests do
                Trace.set_trace i;
                let target, service, payload = dep.d_mix rng i in
                match pick_fault rng faults with
                | F_drop ->
                  incr dropped;
                  Metrics.incr "load/faults_dropped";
                  Trace.event ~iattr:("request", i) ~kind:"fault" ~name:"drop" ()
                | F_compromise ->
                  (* a caller that has no manifest channel to the target
                     probes it; the router must deny every attempt *)
                  incr denied;
                  Metrics.incr "load/faults_compromise";
                  let caller, ptarget, pservice = dep.d_probe in
                  Trace.with_span ~kind:"fault" ~name:"compromised-caller"
                    ~attrs:[ ("request", string_of_int i) ]
                    (fun () ->
                      match
                        Deploy.call dep.d_deploy ~caller ~target:ptarget
                          ~service:pservice payload
                      with
                      | Ok _ -> Trace.fail_span "off-manifest call got through"
                      | Error _ -> ())
                | (F_none | F_delay _) as f ->
                  (match f with
                   | F_delay n ->
                     incr delayed;
                     Metrics.incr "load/faults_delayed";
                     Trace.advance n
                   | _ -> ());
                  Metrics.incr "load/requests";
                  let r =
                    Trace.with_span ~kind:"request"
                      ~name:(target ^ "." ^ service)
                      ~attrs:[ ("request", string_of_int i) ]
                      (fun () ->
                        match
                          Deploy.call dep.d_deploy ~caller:None ~target ~service
                            payload
                        with
                        | Ok r -> Ok r
                        | Error e ->
                          Trace.fail_span e;
                          Error e)
                  in
                  (match r with
                   | Ok reply when has_prefix ~prefix:"rate-limited" reply ->
                     incr degraded;
                     Metrics.incr "load/degraded"
                   | Ok _ ->
                     incr ok;
                     Metrics.incr "load/ok"
                   | Error _ ->
                     incr errors;
                     Metrics.incr "load/errors")
              done));
      let substrates =
        List.sort_uniq Stdlib.compare
          (List.filter_map
             (fun sp -> List.assoc_opt "substrate" sp.Trace.sp_attrs)
             (Trace.spans tracer))
      in
      Ok
        ( { r_scenario = scenario_name scenario;
            r_requests = requests;
            r_seed = seed;
            r_ok = !ok;
            r_degraded = !degraded;
            r_errors = !errors;
            r_dropped = !dropped;
            r_delayed = !delayed;
            r_denied_probes = !denied;
            r_violations = List.length (Deploy.violations dep.d_deploy);
            r_substrates = substrates;
            r_spans = Trace.recorded tracer;
            r_span_ticks = Trace.now tracer;
            r_counters = Metrics.counters metrics;
            r_histograms = Metrics.summaries metrics },
          tracer )
  end

(* --- rendering ------------------------------------------------------------ *)

let render_report_text r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "lateral run %s: %d requests, seed %d\n" r.r_scenario
       r.r_requests r.r_seed);
  Buffer.add_string buf
    (Printf.sprintf
       "  ok %d, degraded %d, errors %d | faults: dropped %d, delayed %d, denied probes %d\n"
       r.r_ok r.r_degraded r.r_errors r.r_dropped r.r_delayed r.r_denied_probes);
  Buffer.add_string buf
    (Printf.sprintf "  violations recorded by the router: %d\n" r.r_violations);
  Buffer.add_string buf
    (Printf.sprintf "  spans: %d over %d ticks, substrates crossed: %s\n" r.r_spans
       r.r_span_ticks
       (if r.r_substrates = [] then "-" else String.concat ", " r.r_substrates));
  Buffer.add_string buf "counters:\n";
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" k v))
    r.r_counters;
  Buffer.add_string buf
    (Printf.sprintf "latency histograms (ticks):\n  %-40s %8s %8s %8s %8s %8s\n"
       "key" "count" "p50" "p95" "p99" "max");
  List.iter
    (fun (k, s) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-40s %8d %8d %8d %8d %8d\n" k s.Metrics.s_count
           s.Metrics.s_p50 s.Metrics.s_p95 s.Metrics.s_p99 s.Metrics.s_max))
    r.r_histograms;
  Buffer.contents buf

let render_report_json r =
  let esc = Metrics.json_escape in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"scenario\":\"%s\",\"requests\":%d,\"seed\":%d,\"ok\":%d,\"degraded\":%d,\"errors\":%d,\"dropped\":%d,\"delayed\":%d,\"denied_probes\":%d,\"violations\":%d,\"spans\":%d,\"span_ticks\":%d,\"substrates\":[%s],\"counters\":{"
       (esc r.r_scenario) r.r_requests r.r_seed r.r_ok r.r_degraded r.r_errors
       r.r_dropped r.r_delayed r.r_denied_probes r.r_violations r.r_spans
       r.r_span_ticks
       (String.concat ","
          (List.map (fun s -> "\"" ^ esc s ^ "\"") r.r_substrates)));
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (esc k) v))
    r.r_counters;
  Buffer.add_string buf "},\"histograms\":{";
  List.iteri
    (fun i (k, s) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"sum\":%d,\"p50\":%d,\"p95\":%d,\"p99\":%d,\"max\":%d}"
           (esc k) s.Metrics.s_count s.Metrics.s_sum s.Metrics.s_p50
           s.Metrics.s_p95 s.Metrics.s_p99 s.Metrics.s_max))
    r.r_histograms;
  Buffer.add_string buf "}}\n";
  Buffer.contents buf
