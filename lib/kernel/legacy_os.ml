type ctx = {
  g_read : string -> string option;
  g_write : string -> string -> unit;
  g_call : string -> string -> string;
}

type behaviour = ctx -> string -> string

type t = {
  g_name : string;
  task : Kernel.task;
  endpoint : Kernel.endpoint;
  mutable vm_tid : int;
  state : (string, string) Hashtbl.t;
  processes : (string, behaviour) Hashtbl.t;
  mutable owned : bool;
  (* per-guest, not a toplevel global: client task names and badges
     derive from it, so a hidden global would leak across world forks
     and break replay determinism *)
  mutable calls : int;
}

let name t = t.g_name

let frames t = Kernel.task_frames t.task

let is_compromised t = t.owned

(* serialize guest state into guest RAM so the bytes physically exist in
   the guest's frames (tamper experiments, frame-disjointness) *)
let mirror t =
  let blob =
    Lt_crypto.Wire.encode
      (Hashtbl.fold (fun k v acc -> Lt_crypto.Wire.encode [ k; v ] :: acc) t.state []
       |> List.sort Stdlib.compare)
  in
  if String.length blob <= 2 * Lt_hw.Mmu.page_size then User.mem_write ~vaddr:0 blob

let make_ctx t =
  let rec ctx =
    { g_read = (fun key -> Hashtbl.find_opt t.state key);
      g_write =
        (fun key v ->
          Hashtbl.replace t.state key v;
          mirror t);
      g_call =
        (fun proc req ->
          match Hashtbl.find_opt t.processes proc with
          | Some b -> b ctx req
          | None -> Printf.sprintf "guest fault: no process %s" proc) }
  in
  ctx

let boot k ~name:g_name ~partition ~memory_pages ~processes =
  let task = Kernel.create_task k ~name:g_name ~partition in
  match Kernel.map_memory k task ~vpage:0 ~pages:memory_pages Lt_hw.Mmu.rw with
  | Error Kernel.Out_of_frames ->
    Error (Printf.sprintf "guest %s: out of physical frames" g_name)
  | Ok () ->
  let endpoint = Kernel.create_endpoint k ~name:(g_name ^ ".vm") in
  let recv_cap =
    Kernel.grant k task endpoint ~rights:{ send = false; recv = true } ~badge:0
  in
  let table = Hashtbl.create 8 in
  List.iter (fun (p, b) -> Hashtbl.replace table p b) processes;
  let guest =
    { g_name;
      task;
      endpoint;
      vm_tid = 0;
      state = Hashtbl.create 16;
      processes = table;
      owned = false;
      calls = 0 }
  in
  let vm () =
    let rec loop () =
      let _badge, m, reply = User.recv ~cap:recv_cap in
      let response =
        match Lt_crypto.Wire.decode m.Sys.payload with
        | Some [ proc; req ] ->
          if guest.owned then
            (* the whole guest answers as the attacker *)
            Lt_crypto.Wire.encode [ "ok"; "pwned:" ^ proc ]
          else
            (match Hashtbl.find_opt guest.processes proc with
             | Some b ->
               (try Lt_crypto.Wire.encode [ "ok"; b (make_ctx guest) req ]
                with exn ->
                  Lt_crypto.Wire.encode [ "err"; Printexc.to_string exn ])
             | None ->
               Lt_crypto.Wire.encode
                 [ "err"; Printf.sprintf "no process %S in guest" proc ])
        | _ -> Lt_crypto.Wire.encode [ "err"; "malformed vm request" ]
      in
      (match reply with
       | Some handle -> User.reply handle (Sys.msg response)
       | None -> ());
      loop ()
    in
    loop ()
  in
  guest.vm_tid <- Kernel.create_thread k task ~name:(g_name ^ ".vm") ~prio:5 vm;
  Ok guest

let call k t ~process req =
  if not (Kernel.thread_alive k t.vm_tid) then Error "guest halted"
  else begin
    t.calls <- t.calls + 1;
    let client_task =
      Kernel.create_task k
        ~name:(Printf.sprintf "%s-call%d" t.g_name t.calls)
        ~partition:(Kernel.task_partition t.task)
    in
    let cap =
      Kernel.grant k client_task t.endpoint ~rights:{ send = true; recv = false }
        ~badge:t.calls
    in
    let result = ref (Error "guest did not reply") in
    let _ =
      Kernel.create_thread k client_task ~name:"vcall" ~prio:5 (fun () ->
          let r =
            User.call ~cap (Sys.msg (Lt_crypto.Wire.encode [ process; req ]))
          in
          result :=
            (match Lt_crypto.Wire.decode r.Sys.payload with
             | Some [ "ok"; out ] -> Ok out
             | Some [ "err"; e ] -> Error e
             | _ -> Error "malformed guest reply"))
    in
    ignore (Kernel.run k);
    !result
  end

let exploit t ~process =
  if Hashtbl.mem t.processes process then t.owned <- true
  else invalid_arg (Printf.sprintf "Legacy_os.exploit: no process %s" process)

let loot _k t =
  if not t.owned then []
  else
    Hashtbl.fold (fun key v acc -> (key, v) :: acc) t.state []
    |> List.sort Stdlib.compare

(* --- Snapshottable ---------------------------------------------------- *)

let take_snapshot t =
  let state = Lt_world.Snapshottable.save_hashtbl t.state in
  let processes = Lt_world.Snapshottable.save_hashtbl t.processes in
  let owned = t.owned in
  let calls = t.calls in
  let vm_tid = t.vm_tid in
  fun () ->
    state ();
    processes ();
    t.owned <- owned;
    t.calls <- calls;
    t.vm_tid <- vm_tid

let state_digest t =
  let open Lt_world in
  Digest64.string Digest64.basis t.g_name
  |> Snapshottable.digest_hashtbl ~key:Fun.id ~value:Fun.id t.state
  |> Fun.flip Digest64.bool t.owned
  |> Fun.flip Digest64.int t.calls
  |> Fun.flip Digest64.int t.vm_tid
