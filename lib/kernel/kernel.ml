open Lt_hw

type rights = { send : bool; recv : bool }

type quiescence = Quiescent | Step_limit | Deadlock

type stats = {
  dispatches : int;
  context_switches : int;
  ipc_messages : int;
  denied_cap_uses : int;
  faults : int;
}

type cap = { cap_ep : endpoint; cap_rights : rights; cap_badge : int }

and task = {
  task_id : int;
  name : string;
  partition : string;
  mmu : Mmu.t;
  cap_slots : (int, cap) Hashtbl.t;
  mutable next_slot : int;
  mutable frames : int list;
}

and endpoint = {
  ep_id : int;
  ep_name : string;
  senders : waiting_sender Queue.t;
  receivers : thread Queue.t;
}

and waiting_sender = {
  ws_thread : thread;
  ws_msg : Sys.msg;
  ws_needs_reply : bool;
  ws_badge : int;
}

and thread_state =
  | Ready
  | Blocked_send of endpoint
  | Blocked_recv of endpoint
  | Awaiting_reply
  | Sleeping of int
  | Dead

and thread = {
  tid : int;
  t_name : string;
  t_task : task;
  prio : int;
  mutable state : thread_state;
  mutable cont : (Sys.sysres, unit) Effect.Deep.continuation option;
  mutable pending : Sys.sysres;
  mutable body : (unit -> unit) option;
  (* permanent copy of the original body: effect continuations are
     one-shot and cannot be captured by a snapshot, so a restore
     normalizes every live thread back to its entry point (see
     take_snapshot below) *)
  respawn : (unit -> unit) option;
  mutable yielded : bool;
  mutable ticks : int;
}

type t = {
  mach : Machine.t;
  pol : Sched.t;
  mutable tasks : task list;
  threads : (int, thread) Hashtbl.t;
  mutable thread_order : thread list;
  mutable ready : thread list;
  mutable next_id : int;
  mutable last_tid : int;
  mutable st : stats;
  mutable crashes : (int * exn) list;
  mutable endpoints : endpoint list; (* registry, for snapshot/restore *)
}

let switch_cost = 2

let ipc_cost = 10

let create mach pol =
  { mach;
    pol;
    tasks = [];
    threads = Hashtbl.create 32;
    thread_order = [];
    ready = [];
    next_id = 1;
    last_tid = -1;
    st = { dispatches = 0; context_switches = 0; ipc_messages = 0;
           denied_cap_uses = 0; faults = 0 };
    crashes = [];
    endpoints = [] }

let machine t = t.mach

let policy t = t.pol

let fresh_id k =
  let id = k.next_id in
  k.next_id <- id + 1;
  id

let create_task k ~name ~partition =
  let task =
    { task_id = fresh_id k;
      name;
      partition;
      mmu = Mmu.create ();
      cap_slots = Hashtbl.create 8;
      next_slot = 0;
      frames = [] }
  in
  k.tasks <- task :: k.tasks;
  task

let task_name task = task.name

let task_partition task = task.partition

let tasks k = List.rev k.tasks

type map_error = Out_of_frames

let map_memory k task ~vpage ~pages perm =
  match Frame_alloc.alloc_n k.mach.Machine.dram_frames pages with
  | None -> Error Out_of_frames
  | Some frames ->
    List.iteri (fun i ppage -> Mmu.map task.mmu ~vpage:(vpage + i) ~ppage perm) frames;
    task.frames <- task.frames @ frames;
    Ok ()

let task_frames task = List.sort_uniq Stdlib.compare task.frames

let create_endpoint k ~name =
  let ep =
    { ep_id = fresh_id k;
      ep_name = name;
      senders = Queue.create ();
      receivers = Queue.create () }
  in
  k.endpoints <- ep :: k.endpoints;
  ep

let endpoint_name ep = ep.ep_name

let grant _k task ep ~rights ~badge =
  let slot = task.next_slot in
  task.next_slot <- slot + 1;
  Hashtbl.replace task.cap_slots slot { cap_ep = ep; cap_rights = rights; cap_badge = badge };
  slot

let revoke _k task ~slot = Hashtbl.remove task.cap_slots slot

let derive_cap _k task ~slot ~rights =
  match Hashtbl.find_opt task.cap_slots slot with
  | None -> Error (Printf.sprintf "no capability in slot %d" slot)
  | Some cap ->
    if (rights.send && not cap.cap_rights.send)
       || (rights.recv && not cap.cap_rights.recv)
    then Error "derivation cannot add rights"
    else begin
      let dst = task.next_slot in
      task.next_slot <- dst + 1;
      Hashtbl.replace task.cap_slots dst { cap with cap_rights = rights };
      Ok dst
    end

let caps task =
  Hashtbl.fold
    (fun slot c acc -> (slot, c.cap_ep.ep_name, c.cap_rights, c.cap_badge) :: acc)
    task.cap_slots []
  |> List.sort Stdlib.compare

let create_thread k task ~name ~prio body =
  let th =
    { tid = fresh_id k;
      t_name = name;
      t_task = task;
      prio;
      state = Ready;
      cont = None;
      pending = Sys.R_unit;
      body = Some body;
      respawn = Some body;
      yielded = false;
      ticks = 0 }
  in
  Hashtbl.replace k.threads th.tid th;
  k.thread_order <- k.thread_order @ [ th ];
  k.ready <- k.ready @ [ th ];
  th.tid

(* --- ready-queue helpers ------------------------------------------------ *)

let enqueue_ready k th = k.ready <- k.ready @ [ th ]

let make_ready k th res =
  th.state <- Ready;
  th.pending <- res;
  enqueue_ready k th

(* re-home transferred capability slots into the receiving task *)
let transfer_caps (m : Sys.msg) ~from_task ~to_task =
  let moved =
    List.filter_map
      (fun slot ->
        match Hashtbl.find_opt from_task.cap_slots slot with
        | None -> None
        | Some cap ->
          let dst = to_task.next_slot in
          to_task.next_slot <- dst + 1;
          Hashtbl.replace to_task.cap_slots dst cap;
          Some dst)
      m.Sys.caps
  in
  { m with Sys.caps = moved }

(* --- memory syscalls ---------------------------------------------------- *)

let charge k th n =
  Clock.advance k.mach.Machine.clock n;
  th.ticks <- th.ticks + n

let page_chunks vaddr len =
  (* split [vaddr, vaddr+len) at page boundaries *)
  let page = Mmu.page_size in
  let rec go a remaining acc =
    if remaining = 0 then List.rev acc
    else begin
      let boundary = ((a / page) + 1) * page in
      let n = min remaining (boundary - a) in
      go (a + n) (remaining - n) ((a, n) :: acc)
    end
  in
  go vaddr len []

let mem_read k th vaddr len =
  if len < 0 then Sys.R_error "mem_read: negative length"
  else begin
    let buf = Buffer.create len in
    let rec go = function
      | [] -> Sys.R_data (Buffer.contents buf)
      | (a, n) :: rest ->
        (match Mmu.translate th.t_task.mmu ~vaddr:a Mmu.Read with
         | Error f ->
           k.st <- { k.st with faults = k.st.faults + 1 };
           Sys.R_error (Format.asprintf "page fault: %a" Mmu.pp_fault f)
         | Ok paddr ->
           (match Bus.read k.mach.Machine.bus ~requester:(Bus.Cpu { secure = false })
                    ~addr:paddr ~len:n with
            | Error d -> Sys.R_error (Format.asprintf "bus: %a" Bus.pp_denial d)
            | Ok data ->
              Buffer.add_string buf data;
              go rest))
    in
    go (page_chunks vaddr len)
  end

let mem_write k th vaddr data =
  let rec go off = function
    | [] -> Sys.R_unit
    | (a, n) :: rest ->
      (match Mmu.translate th.t_task.mmu ~vaddr:a Mmu.Write with
       | Error f ->
         k.st <- { k.st with faults = k.st.faults + 1 };
         Sys.R_error (Format.asprintf "page fault: %a" Mmu.pp_fault f)
       | Ok paddr ->
         (match Bus.write k.mach.Machine.bus ~requester:(Bus.Cpu { secure = false })
                  ~addr:paddr (String.sub data off n) with
          | Error d -> Sys.R_error (Format.asprintf "bus: %a" Bus.pp_denial d)
          | Ok () -> go (off + n) rest))
  in
  go 0 (page_chunks vaddr (String.length data))

(* --- IPC ---------------------------------------------------------------- *)

let lookup_cap k th slot ~need_send ~need_recv =
  match Hashtbl.find_opt th.t_task.cap_slots slot with
  | None ->
    k.st <- { k.st with denied_cap_uses = k.st.denied_cap_uses + 1 };
    Error (Printf.sprintf "invalid capability slot %d" slot)
  | Some cap ->
    if (need_send && not cap.cap_rights.send) || (need_recv && not cap.cap_rights.recv)
    then begin
      k.st <- { k.st with denied_cap_uses = k.st.denied_cap_uses + 1 };
      Error (Printf.sprintf "insufficient rights on slot %d" slot)
    end
    else Ok cap

(* every delivered IPC message is a traced event: this is where a
   cross-substrate trace shows the microkernel hop itself, not just the
   adapter call around it. The endpoint (or reply) name is a stable
   pointer and the badge rides in the ring's unboxed int column, so a
   message is traced without allocating — the sender and receiver are
   already evident from the enclosing ipc-rpc span and the badge. *)
let trace_ipc ~name ~badge =
  Lt_obs.Trace.event ~iattr:("badge", badge) ~kind:"ipc" ~name ();
  Lt_obs.Metrics.incr_grouped ~group:"kernel" "ipc_messages"

let deliver_to_receiver k ~ep ~sender ~receiver ~badge ~needs_reply m =
  let m = transfer_caps m ~from_task:sender.t_task ~to_task:receiver.t_task in
  let reply = if needs_reply then Some sender.tid else None in
  make_ready k receiver (Sys.R_msg { badge; m; reply });
  k.st <- { k.st with ipc_messages = k.st.ipc_messages + 1 };
  trace_ipc ~name:ep.ep_name ~badge

let do_send k th slot m ~needs_reply =
  match lookup_cap k th slot ~need_send:true ~need_recv:false with
  | Error e -> th.pending <- Sys.R_error e; th.state <- Ready
  | Ok cap ->
    charge k th ipc_cost;
    let ep = cap.cap_ep in
    (match Queue.take_opt ep.receivers with
     | Some receiver ->
       deliver_to_receiver k ~ep ~sender:th ~receiver ~badge:cap.cap_badge
         ~needs_reply m;
       if needs_reply then th.state <- Awaiting_reply
       else begin
         th.pending <- Sys.R_unit;
         th.state <- Ready
       end
     | None ->
       Queue.add { ws_thread = th; ws_msg = m; ws_needs_reply = needs_reply;
                   ws_badge = cap.cap_badge }
         ep.senders;
       th.state <- Blocked_send ep)

let do_recv k th slot =
  match lookup_cap k th slot ~need_send:false ~need_recv:true with
  | Error e -> th.pending <- Sys.R_error e; th.state <- Ready
  | Ok cap ->
    charge k th ipc_cost;
    let ep = cap.cap_ep in
    (match Queue.take_opt ep.senders with
     | Some ws ->
       let m = transfer_caps ws.ws_msg ~from_task:ws.ws_thread.t_task ~to_task:th.t_task in
       let reply = if ws.ws_needs_reply then Some ws.ws_thread.tid else None in
       th.pending <- Sys.R_msg { badge = ws.ws_badge; m; reply };
       th.state <- Ready;
       k.st <- { k.st with ipc_messages = k.st.ipc_messages + 1 };
       trace_ipc ~name:ep.ep_name ~badge:ws.ws_badge;
       if ws.ws_needs_reply then ws.ws_thread.state <- Awaiting_reply
       else make_ready k ws.ws_thread Sys.R_unit
     | None ->
       Queue.add th ep.receivers;
       th.state <- Blocked_recv ep)

let do_reply k th handle m =
  match Hashtbl.find_opt k.threads handle with
  | Some caller when caller.state = Awaiting_reply ->
    charge k th ipc_cost;
    let m = transfer_caps m ~from_task:th.t_task ~to_task:caller.t_task in
    make_ready k caller (Sys.R_msg { badge = 0; m; reply = None });
    k.st <- { k.st with ipc_messages = k.st.ipc_messages + 1 };
    trace_ipc ~name:(Lt_obs.Trace.span_name th.t_task.name "reply") ~badge:0;
    th.pending <- Sys.R_unit;
    th.state <- Ready
  | _ ->
    th.pending <- Sys.R_error "reply: no thread awaiting this handle";
    th.state <- Ready

(* --- syscall dispatch ---------------------------------------------------- *)

let handle_syscall k th (sc : Sys.syscall)
    (cont : (Sys.sysres, unit) Effect.Deep.continuation) =
  th.cont <- Some cont;
  charge k th 1;
  match sc with
  | Sys.Call (slot, m) -> do_send k th slot m ~needs_reply:true
  | Sys.Send (slot, m) -> do_send k th slot m ~needs_reply:false
  | Sys.Recv slot -> do_recv k th slot
  | Sys.Reply (handle, m) -> do_reply k th handle m
  | Sys.Yield ->
    th.pending <- Sys.R_unit;
    th.state <- Ready;
    th.yielded <- true
  | Sys.Sleep n ->
    th.state <- Sleeping (Clock.now k.mach.Machine.clock + max 0 n)
  | Sys.Consume n ->
    charge k th (max 0 n);
    th.pending <- Sys.R_unit;
    th.state <- Ready
  | Sys.Mem_read (vaddr, len) ->
    th.pending <- mem_read k th vaddr len;
    th.state <- Ready
  | Sys.Mem_write (vaddr, data) ->
    th.pending <- mem_write k th vaddr data;
    th.state <- Ready
  | Sys.Time ->
    th.pending <- Sys.R_int (Clock.now k.mach.Machine.clock);
    th.state <- Ready
  | Sys.Tid ->
    th.pending <- Sys.R_int th.tid;
    th.state <- Ready
  | Sys.Exit ->
    th.cont <- None;
    th.state <- Dead

let exec k th f =
  Effect.Deep.match_with f ()
    { retc = (fun () -> th.state <- Dead);
      exnc =
        (fun e ->
          th.state <- Dead;
          k.crashes <- (th.tid, e) :: k.crashes);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sys.Sys sc ->
            Some
              (fun (cont : (a, unit) Effect.Deep.continuation) ->
                handle_syscall k th sc cont)
          | _ -> None) }

let resume k th =
  match th.body with
  | Some f ->
    th.body <- None;
    exec k th f
  | None ->
    (match th.cont with
     | Some cont ->
       th.cont <- None;
       Effect.Deep.continue cont th.pending
     | None -> th.state <- Dead)

(* --- scheduler ----------------------------------------------------------- *)

let take_ready k pred =
  let rec go acc = function
    | [] -> None
    | th :: rest ->
      if th.state = Ready && pred th then begin
        k.ready <- List.rev_append acc rest;
        Some th
      end
      else go (th :: acc) rest
  in
  go [] k.ready

let take_highest_prio k =
  let best =
    List.fold_left
      (fun acc th ->
        if th.state <> Ready then acc
        else
          match acc with
          | None -> Some th
          | Some b -> if th.prio < b.prio then Some th else acc)
      None k.ready
  in
  match best with
  | None -> None
  | Some th -> take_ready k (fun t -> t.tid = th.tid)

let wake_sleepers k =
  let now = Clock.now k.mach.Machine.clock in
  List.iter
    (fun th ->
      match th.state with
      | Sleeping wake_at when wake_at <= now -> make_ready k th Sys.R_unit
      | _ -> ())
    k.thread_order

let earliest_wake k =
  List.fold_left
    (fun acc th ->
      match th.state with
      | Sleeping wake_at ->
        (match acc with None -> Some wake_at | Some w -> Some (min w wake_at))
      | _ -> acc)
    None k.thread_order

let blocked_exist k =
  List.exists
    (fun th ->
      match th.state with
      | Blocked_send _ | Blocked_recv _ | Awaiting_reply -> true
      | Ready | Sleeping _ | Dead -> false)
    k.thread_order

type pick = P_thread of thread * int option | P_advance of int | P_empty

(* choose the next thread; [int option] is an absolute preemption deadline *)
let next_runnable k =
  wake_sleepers k;
  let now = Clock.now k.mach.Machine.clock in
  match k.pol with
  | Sched.Round_robin { quantum } ->
    (match take_ready k (fun _ -> true) with
     | Some th -> P_thread (th, Some (now + quantum))
     | None ->
       (match earliest_wake k with
        | Some w -> P_advance w
        | None -> P_empty))
  | Sched.Fixed_priority { quantum } ->
    (match take_highest_prio k with
     | Some th -> P_thread (th, Some (now + quantum))
     | None ->
       (match earliest_wake k with
        | Some w -> P_advance w
        | None -> P_empty))
  | Sched.Tdma { slots } ->
    let partition, slot_end = Sched.tdma_slot_at slots now in
    (match take_ready k (fun th -> th.t_task.partition = partition) with
     | Some th -> P_thread (th, Some slot_end)
     | None ->
       let others_ready = List.exists (fun th -> th.state = Ready) k.ready in
       let wake = earliest_wake k in
       if others_ready then P_advance slot_end
       else
         (match wake with
          | Some w -> P_advance (min w slot_end)
          | None -> P_empty))

let dispatch k th ~deadline =
  if k.last_tid <> th.tid then begin
    k.st <- { k.st with context_switches = k.st.context_switches + 1 };
    Clock.advance k.mach.Machine.clock switch_cost
  end;
  k.last_tid <- th.tid;
  k.st <- { k.st with dispatches = k.st.dispatches + 1 };
  let over_deadline () =
    match deadline with
    | None -> false
    | Some d -> Clock.now k.mach.Machine.clock >= d
  in
  let rec step () =
    th.yielded <- false;
    resume k th;
    match th.state with
    | Ready ->
      if th.yielded || over_deadline () then enqueue_ready k th else step ()
    | Blocked_send _ | Blocked_recv _ | Awaiting_reply | Sleeping _ | Dead -> ()
  in
  step ()

let run ?(max_steps = 1_000_000) k =
  let steps = ref 0 in
  let result = ref None in
  while !result = None do
    if !steps >= max_steps then result := Some Step_limit
    else
      match next_runnable k with
      | P_thread (th, deadline) ->
        incr steps;
        dispatch k th ~deadline
      | P_advance target ->
        let now = Clock.now k.mach.Machine.clock in
        Clock.advance k.mach.Machine.clock (max 1 (target - now))
      | P_empty ->
        result := Some (if blocked_exist k then Deadlock else Quiescent)
  done;
  (match !result with Some r -> r | None -> assert false)

let stats k = k.st

let thread_ticks k tid =
  match Hashtbl.find_opt k.threads tid with None -> 0 | Some th -> th.ticks

(* on the zero-alloc deploy fast path: Hashtbl.find_opt would box the
   hit in [Some] on every call *)
let thread_alive k tid =
  match Hashtbl.find k.threads tid with
  | th -> th.state <> Dead
  | exception Not_found -> false

let thread_crash k tid = List.assoc_opt tid k.crashes

let kill_thread k tid =
  match Hashtbl.find_opt k.threads tid with
  | None -> ()
  | Some th ->
    th.state <- Dead;
    th.cont <- None;
    th.body <- None

let pp_quiescence fmt = function
  | Quiescent -> Format.pp_print_string fmt "quiescent"
  | Step_limit -> Format.pp_print_string fmt "step limit reached"
  | Deadlock -> Format.pp_print_string fmt "deadlock"

(* --- Snapshottable ------------------------------------------------------ *)

(* Snapshots are meant to be taken at quiescent points (after [run]
   returned): effect continuations are one-shot and cannot be captured,
   so restore normalizes every thread that was alive at capture back to
   Ready at its original entry point ([respawn]) and clears all endpoint
   queues.  Server-loop threads are stateless until their first [recv],
   so on the next [run] they re-execute straight back into Blocked_recv
   and the kernel is observationally the captured one.  The machine
   underneath (clock, DRAM, frames) has its own capture. *)
let take_snapshot k =
  let tasks = k.tasks in
  let task_saves =
    List.map
      (fun task ->
        let caps = Lt_world.Snapshottable.save_hashtbl task.cap_slots in
        let next_slot = task.next_slot in
        let frames = task.frames in
        let mmu = Mmu.take_snapshot task.mmu in
        fun () ->
          caps ();
          task.next_slot <- next_slot;
          task.frames <- frames;
          mmu ())
      tasks
  in
  let threads = Lt_world.Snapshottable.save_hashtbl k.threads in
  let thread_saves =
    Hashtbl.fold
      (fun _ th acc ->
        let dead = th.state = Dead in
        let ticks = th.ticks in
        (fun () ->
          th.cont <- None;
          th.yielded <- false;
          th.ticks <- ticks;
          th.pending <- Sys.R_unit;
          if dead then begin
            th.state <- Dead;
            th.body <- None
          end
          else begin
            th.state <- Ready;
            th.body <- th.respawn
          end)
        :: acc)
      k.threads []
  in
  let thread_order = k.thread_order in
  let endpoints = k.endpoints in
  let next_id = k.next_id in
  let st = k.st in
  let crashes = k.crashes in
  fun () ->
    k.tasks <- tasks;
    List.iter (fun restore -> restore ()) task_saves;
    threads ();
    List.iter (fun restore -> restore ()) thread_saves;
    k.thread_order <- thread_order;
    (* all captured-live threads are Ready at their entry points: queue
       them in creation order so servers re-block before any new client
       runs *)
    k.ready <- List.filter (fun th -> th.state = Ready) thread_order;
    k.endpoints <- endpoints;
    List.iter
      (fun ep ->
        Queue.clear ep.senders;
        Queue.clear ep.receivers)
      endpoints;
    k.next_id <- next_id;
    k.last_tid <- -1;
    k.st <- st;
    k.crashes <- crashes

(* Digests the kernel up to the restore normalization above: thread
   block-states and the scheduling cursor are transient between
   quiescent points (a captured Blocked_recv server and its restored
   Ready-at-entry twin are observationally the same kernel), so only
   liveness is hashed. *)
let state_digest k =
  let open Lt_world in
  let d = ref (Digest64.int Digest64.basis k.next_id) in
  d := Digest64.int !d (List.length k.crashes);
  let st = k.st in
  List.iter
    (fun n -> d := Digest64.int !d n)
    [ st.dispatches; st.context_switches; st.ipc_messages; st.denied_cap_uses;
      st.faults ];
  List.iter
    (fun task ->
      d := Digest64.string (Digest64.string !d task.name) task.partition;
      d := Digest64.int !d task.next_slot;
      d := Digest64.list Digest64.int !d task.frames;
      d :=
        Snapshottable.digest_hashtbl ~key:string_of_int
          ~value:(fun c ->
            Printf.sprintf "%s|%b%b|%d" c.cap_ep.ep_name c.cap_rights.send
              c.cap_rights.recv c.cap_badge)
          task.cap_slots !d;
      d := Digest64.combine !d (Mmu.state_digest task.mmu))
    (List.rev k.tasks);
  List.iter
    (fun th ->
      d := Digest64.string (Digest64.int !d th.tid) th.t_name;
      d := Digest64.int !d th.ticks;
      d := Digest64.bool !d (th.state = Dead))
    k.thread_order;
  !d

let layer ?(name = "kernel") k =
  Lt_world.Snapshottable.make ~name
    ~take:(fun () -> take_snapshot k)
    ~digest:(fun () -> state_digest k)
