(** The microkernel: MMU-based spatial isolation, badged synchronous IPC,
    and pluggable temporal isolation.

    One [Kernel.t] runs on one {!Lt_hw.Machine.t}. Tasks own an address
    space (their page table over machine DRAM) and a capability space.
    Threads are OCaml closures suspended via effects; every syscall is a
    scheduling point, which models preemption at syscall granularity.

    Capabilities bundle a communication right with a badge — the context
    identification the paper names as the tool against confused deputies
    (§III-D). A thread can only name endpoints present in its task's
    capability space: that is POLA, enforced by construction. *)

type t

type task

type endpoint

type rights = { send : bool; recv : bool }

(** Outcome of {!run}. *)
type quiescence =
  | Quiescent     (** no runnable or sleeping threads remain *)
  | Step_limit    (** stopped at [max_steps] dispatches *)
  | Deadlock      (** threads exist but all are blocked on IPC forever *)

type stats = {
  dispatches : int;
  context_switches : int;
  ipc_messages : int;
  denied_cap_uses : int;  (** syscalls refused for missing caps/rights *)
  faults : int;           (** page faults taken *)
}

(** [create machine policy] boots a kernel on [machine]. *)
val create : Lt_hw.Machine.t -> Sched.t -> t

val machine : t -> Lt_hw.Machine.t

val policy : t -> Sched.t

(** [create_task t ~name ~partition] makes an empty task. [partition]
    labels it for TDMA scheduling and analysis. *)
val create_task : t -> name:string -> partition:string -> task

val task_name : task -> string

val task_partition : task -> string

(** [tasks t] — every task ever created, oldest first. The handle a
    conformance checker needs to walk the de-facto capability state
    ({!caps}, {!task_frames}) of a booted kernel. *)
val tasks : t -> task list

(** Physical memory can run out; the syscall reports it, it never
    panics the kernel. *)
type map_error = Out_of_frames

(** [map_memory t task ~vpage ~pages perm] allocates DRAM frames and maps
    them at [vpage..vpage+pages-1]. [Error Out_of_frames] when physical
    memory is exhausted — the task keeps whatever it already had. *)
val map_memory :
  t -> task -> vpage:int -> pages:int -> Lt_hw.Mmu.perm ->
  (unit, map_error) result

(** [task_frames t task] lists physical pages mapped into the task, for
    isolation assertions. *)
val task_frames : task -> int list

(** [create_endpoint t ~name] makes a kernel IPC object. *)
val create_endpoint : t -> name:string -> endpoint

val endpoint_name : endpoint -> string

(** [grant t task endpoint ~rights ~badge] mints a capability into the
    task's capability space and returns its slot index — the only name
    user code ever holds for the endpoint. *)
val grant : t -> task -> endpoint -> rights:rights -> badge:int -> int

(** [revoke t task ~slot] deletes a capability. *)
val revoke : t -> task -> slot:int -> unit

(** [derive_cap t task ~slot ~rights] mints an attenuated copy of an
    existing capability into a fresh slot: the new rights must be a
    subset of the original's (monotonicity), and the badge is inherited
    — a task can narrow its authority before delegating, never widen it
    or forge an identity. Returns [Error] on missing caps or widening
    attempts. *)
val derive_cap : t -> task -> slot:int -> rights:rights -> (int, string) result

(** [caps t task] lists [(slot, endpoint name, rights, badge)]. *)
val caps : task -> (int * string * rights * int) list

(** [create_thread t task ~name ~prio body] readies a thread. [body]
    runs with the {!User} wrappers available; lower [prio] value = more
    important (fixed-priority policy only). *)
val create_thread : t -> task -> name:string -> prio:int -> (unit -> unit) -> int

(** [run ?max_steps t] dispatches until quiescence, deadlock or the step
    limit (default 1_000_000 dispatches). *)
val run : ?max_steps:int -> t -> quiescence

val stats : t -> stats

(** [thread_ticks t tid] is simulated CPU time consumed by the thread. *)
val thread_ticks : t -> int -> int

(** [thread_alive t tid]. *)
val thread_alive : t -> int -> bool

(** [thread_crash t tid] is the exception that killed the thread, if it
    died by an uncaught exception (component crash / fault injection). *)
val thread_crash : t -> int -> exn option

(** [kill_thread t tid] forcibly terminates a thread (component
    teardown). Safe on already-dead threads. *)
val kill_thread : t -> int -> unit

val pp_quiescence : Format.formatter -> quiescence -> unit

(** Capture tasks, capability spaces, threads and stats; the returned
    thunk restores them (re-runnable).  Contract: capture at a quiescent
    point.  Effect continuations are one-shot, so restore normalizes
    every live thread back to Ready at its original entry point and
    clears endpoint queues; server loops re-block on their next [run]
    and the kernel is observationally the captured one.  The machine
    underneath is captured separately ({!Lt_hw.Machine.take_snapshot}). *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t

(** The kernel as one {!Lt_world.Snapshottable} layer (machine not
    included). *)
val layer : ?name:string -> t -> Lt_world.Snapshottable.layer
