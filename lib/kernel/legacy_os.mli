(** Paravirtualized legacy operating systems on the microkernel (§II-B).

    "MMU-based isolation can even run entire legacy operating systems
    using paravirtualization techniques. This approach was used ... to
    implement Simko3, the so-called Merkel-Phone ... two Android systems
    side by side on the same phone."

    A guest is one kernel task hosting many {e guest processes} that
    share the guest's address space and state — a faithful model of a
    monolithic OS: no internal walls, so exploiting any process owns the
    whole guest. Two guests, however, live in disjoint kernel tasks with
    disjoint physical frames; the kernel's spatial isolation holds the
    line between them. *)

type t

(** What a guest process sees: the guest's shared state (any process can
    read and write all of it — that is the point) and in-guest calls. *)
type ctx = {
  g_read : string -> string option;     (** shared guest state *)
  g_write : string -> string -> unit;
  g_call : string -> string -> string;  (** call a sibling process *)
}

type behaviour = ctx -> string -> string

(** [boot k ~name ~partition ~memory_pages ~processes] starts a guest:
    allocates its RAM, spawns its (single) kernel-visible execution
    context. [Error _] when the machine is out of physical frames. *)
val boot :
  Kernel.t -> name:string -> partition:string -> memory_pages:int ->
  processes:(string * behaviour) list -> (t, string) result

val name : t -> string

(** [call k t ~process req] enters the guest through the kernel (IPC to
    the guest's virtual-machine thread) and runs the named process. *)
val call : Kernel.t -> t -> process:string -> string -> (string, string) result

(** [frames t] — the guest's physical frames, for disjointness checks. *)
val frames : t -> int list

(** {2 Compromise modelling} *)

(** [exploit t ~process] — the process is subverted; because the guest
    has no internal isolation this owns the whole guest. *)
val exploit : t -> process:string -> unit

val is_compromised : t -> bool

(** [loot k t] — what the attacker inside a compromised guest can dump:
    the entire shared guest state. Empty for intact guests. *)
val loot : Kernel.t -> t -> (string * string) list

(** Capture the guest's KV state, process table, compromise flag and
    call counter; the returned thunk restores them (re-runnable). *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
