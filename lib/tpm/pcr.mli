(** Platform Configuration Registers.

    A PCR can only be *extended* — new = SHA-256(old || digest) — never
    written, so the register value commits to the exact sequence of
    measurements since reset (§II-B, "a cryptographic boot log").
    Static PCRs (0-16) reset only at power-on; dynamic/DRTM PCRs (17+)
    are resettable by the late-launch instruction. *)

type t

val count : int
(** 24 registers, as in TPM 1.2. *)

val drtm_index : int
(** 17 — the register late launch resets and measures into. *)

val create : unit -> t

(** [read t i] is the current 32-byte value of PCR [i]. *)
val read : t -> int -> string

(** [extend t i digest] folds a 32-byte measurement into PCR [i]. *)
val extend : t -> int -> string -> unit

(** [reset_drtm t] zeroes the DRTM register only — the hardware effect
    of the late-launch instruction. *)
val reset_drtm : t -> unit

(** [power_cycle t] zeroes everything (reboot). *)
val power_cycle : t -> unit

(** [composite t indices] is the digest over the selected registers —
    the value quotes and sealing policies bind to. *)
val composite : t -> int list -> string

(** [expected_composite measurements] predicts the composite of a single
    PCR that started at zero and was extended with [measurements] in
    order — what a verifier computes from a reference manifest. *)
val expected_value : string list -> string

(** Capture the PCR bank (one array copy). *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
