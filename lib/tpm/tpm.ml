open Lt_crypto

type nv_slot = {
  nv_selection : int list;
  nv_policy : string; (* composite at definition time *)
  mutable nv_data : string;
}

type t = {
  pcr_bank : Pcr.t;
  ek : Rsa.keypair;
  cert : Cert.t;
  srk : string; (* storage root key: never leaves the chip *)
  chip_serial : string;
  rng : Drbg.t;
  nv : (int, nv_slot) Hashtbl.t;
  (* RSA signing is deterministic, so repeated signatures over the same
     body (every Flicker session quotes the same PAL composite under
     the same nonce) are memoized; a pure cache, invisible to snapshots *)
  sign_memo : (string, string) Hashtbl.t;
}

type quote = {
  q_nonce : string;
  q_selection : int list;
  q_composite : string;
  q_signature : string;
}

type sealed = { s_selection : int list; s_box : string }

let manufacture rng ~ca_name ~ca_key ~serial =
  let ek = Rsa.generate ~bits:512 rng in
  let cert = Cert.issue ~ca_name ~ca_key ~subject:("tpm:" ^ serial) ek.Rsa.pub in
  { pcr_bank = Pcr.create ();
    ek;
    cert;
    srk = Drbg.bytes rng 32;
    chip_serial = serial;
    rng = Drbg.split rng;
    nv = Hashtbl.create 4;
    sign_memo = Hashtbl.create 8 }

let pcrs t = t.pcr_bank

let ek_cert t = t.cert

let serial t = t.chip_serial

let extend t i digest = Pcr.extend t.pcr_bank i digest

let quote_body ~nonce ~selection ~composite : string =
  Printf.sprintf "tpm-quote|%s|%s|%s" nonce
    (String.concat "," (List.map string_of_int (List.sort_uniq Stdlib.compare selection)))
    composite

let sign_cached t body =
  match Hashtbl.find_opt t.sign_memo body with
  | Some signature -> signature
  | None ->
    let signature = Rsa.sign t.ek body in
    Hashtbl.replace t.sign_memo body signature;
    signature

let quote t ~nonce ~selection =
  let composite = Pcr.composite t.pcr_bank selection in
  { q_nonce = nonce;
    q_selection = List.sort_uniq Stdlib.compare selection;
    q_composite = composite;
    q_signature = sign_cached t (quote_body ~nonce ~selection ~composite) }

let verify_quote ~ek_pub q =
  Rsa.verify ek_pub ~signature:q.q_signature
    (quote_body ~nonce:q.q_nonce ~selection:q.q_selection ~composite:q.q_composite)

let ak_sign t ~body = sign_cached t body

let seal_key t composite =
  Hkdf.derive ~secret:t.srk ~salt:"tpm-seal" ~info:composite 16

let seal t ~selection data =
  let selection = List.sort_uniq Stdlib.compare selection in
  let composite = Pcr.composite t.pcr_bank selection in
  let nonce = Drbg.bytes t.rng Speck.nonce_size in
  let box =
    Speck.Aead.encrypt ~key:(seal_key t composite) ~nonce ~ad:"tpm-sealed" data
  in
  { s_selection = selection; s_box = Speck.Aead.to_wire box }

let unseal t s =
  match Speck.Aead.of_wire s.s_box with
  | None -> None
  | Some box ->
    let composite = Pcr.composite t.pcr_bank s.s_selection in
    Speck.Aead.decrypt ~key:(seal_key t composite) ~ad:"tpm-sealed" box

let nv_define t ~index ~selection =
  if Hashtbl.mem t.nv index then
    invalid_arg (Printf.sprintf "Tpm.nv_define: slot %d exists" index);
  let selection = List.sort_uniq Stdlib.compare selection in
  Hashtbl.replace t.nv index
    { nv_selection = selection;
      nv_policy = Pcr.composite t.pcr_bank selection;
      nv_data = "" }

let nv_write t ~index data =
  match Hashtbl.find_opt t.nv index with
  | None -> Error (Printf.sprintf "nv slot %d undefined" index)
  | Some slot ->
    if Ct.equal (Pcr.composite t.pcr_bank slot.nv_selection) slot.nv_policy then begin
      slot.nv_data <- data;
      Ok ()
    end
    else Error "nv write policy violated (pcr state changed)"

let nv_read t ~index =
  match Hashtbl.find_opt t.nv index with
  | None -> Error (Printf.sprintf "nv slot %d undefined" index)
  | Some slot -> Ok slot.nv_data

let sealed_to_wire s =
  Printf.sprintf "%s|%s"
    (String.concat "," (List.map string_of_int s.s_selection))
    s.s_box

let sealed_of_wire w =
  match String.index_opt w '|' with
  | None -> None
  | Some i ->
    let sel_str = String.sub w 0 i in
    let box = String.sub w (i + 1) (String.length w - i - 1) in
    let parts = if sel_str = "" then [] else String.split_on_char ',' sel_str in
    (try
       Some
         { s_selection = List.map int_of_string parts;
           s_box = box }
     with Failure _ -> None)

(* --- Snapshottable ---------------------------------------------------- *)

(* NV slot records are mutable: capture their data fields and restore in
   place (sealed blobs in the wild reference the slot policy, which is
   immutable).  The seal nonce generator is part of the state: replaying
   the same operations after a restore must produce the same blobs. *)
let take_snapshot t =
  let pcr = Pcr.take_snapshot t.pcr_bank in
  let rng = Drbg.save t.rng in
  let nv = Lt_world.Snapshottable.save_hashtbl t.nv in
  let nv_data = Hashtbl.fold (fun i s acc -> (i, s, s.nv_data) :: acc) t.nv [] in
  fun () ->
    pcr ();
    Drbg.restore t.rng rng;
    nv ();
    List.iter (fun (_, slot, data) -> slot.nv_data <- data) nv_data

let state_digest t =
  let open Lt_world in
  Digest64.string Digest64.basis t.chip_serial
  |> Fun.flip Digest64.combine (Pcr.state_digest t.pcr_bank)
  |> Fun.flip Digest64.int64 (Drbg.save t.rng)
  |> Snapshottable.digest_hashtbl ~key:string_of_int
       ~value:(fun slot -> slot.nv_policy ^ "\x00" ^ slot.nv_data)
       t.nv

let layer ?(name = "tpm") t =
  Lt_world.Snapshottable.make ~name
    ~take:(fun () -> take_snapshot t)
    ~digest:(fun () -> state_digest t)
