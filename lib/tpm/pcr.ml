open Lt_crypto

let count = 24

let drtm_index = 17

let zero = String.make Sha256.digest_size '\000'

type t = { regs : string array }

let create () = { regs = Array.make count zero }

let check_index i =
  if i < 0 || i >= count then invalid_arg "Pcr: index out of range"

let read t i =
  check_index i;
  t.regs.(i)

let extend t i digest =
  check_index i;
  if String.length digest <> Sha256.digest_size then
    invalid_arg "Pcr.extend: need a 32-byte digest";
  t.regs.(i) <- Sha256.digest_concat [ t.regs.(i); digest ]

let reset_drtm t = t.regs.(drtm_index) <- zero

let power_cycle t = Array.fill t.regs 0 count zero

let composite t indices =
  let parts =
    List.map
      (fun i ->
        check_index i;
        Printf.sprintf "%02d" i ^ t.regs.(i))
      (List.sort_uniq Stdlib.compare indices)
  in
  Sha256.digest_concat parts

let expected_value measurements =
  List.fold_left
    (fun acc m -> Sha256.digest_concat [ acc; m ])
    zero measurements

(* --- Snapshottable ---------------------------------------------------- *)

let take_snapshot t = Lt_world.Snapshottable.save_array t.regs

let state_digest t =
  Array.fold_left Lt_world.Digest64.string Lt_world.Digest64.basis t.regs
