(** The TPM chip: measurement storage, sealing and remote attestation.

    Physically separate from the main CPU (its state is plain OCaml data
    no {!Lt_hw.Tamper} handle can reach — the model of a discrete chip).
    Holds an endorsement keypair whose certificate chains to the
    manufacturer CA, so remote verifiers can trust quotes without
    knowing individual devices. *)

type t

(** A signed report of PCR state. *)
type quote = {
  q_nonce : string;          (** verifier freshness challenge *)
  q_selection : int list;    (** which PCRs are covered *)
  q_composite : string;      (** their composite digest at signing time *)
  q_signature : string;      (** EK signature over all of the above *)
}

(** Data bound to a PCR policy; only a TPM whose selected PCRs currently
    match the sealing-time composite can recover it. *)
type sealed

(** [manufacture rng ~ca_name ~ca_key ~serial] fabricates a chip with a
    fresh endorsement key certified by the manufacturer. *)
val manufacture :
  Lt_crypto.Drbg.t -> ca_name:string -> ca_key:Lt_crypto.Rsa.keypair ->
  serial:string -> t

val pcrs : t -> Pcr.t

val ek_cert : t -> Lt_crypto.Cert.t

val serial : t -> string

(** [extend t i digest] — convenience passthrough to the PCR bank. *)
val extend : t -> int -> string -> unit

(** [quote t ~nonce ~selection] signs the current composite. *)
val quote : t -> nonce:string -> selection:int list -> quote

(** [verify_quote ~ek_pub q] checks the signature; the caller must also
    compare [q.q_composite] against the expected reference value and
    check nonce freshness. *)
val verify_quote : ek_pub:Lt_crypto.Rsa.public -> quote -> bool

(** [ak_sign t ~body] signs an arbitrary statement with the attestation
    (endorsement) key — the primitive under the unified attestation
    layer's TPM-backed evidence. *)
val ak_sign : t -> body:string -> string

(** [quote_body ~nonce ~selection ~composite] is the canonical byte
    string a quote signature covers. Exposed so alternative TPM
    implementations (e.g. a TrustZone-hosted fTPM, §II-C) can produce
    quotes that {!verify_quote} accepts — the verifier cannot and need
    not tell chip from software. *)
val quote_body : nonce:string -> selection:int list -> composite:string -> string

(** [seal t ~selection data] binds [data] to the current values of the
    selected PCRs (BitLocker-style key protection). *)
val seal : t -> selection:int list -> string -> sealed

(** [unseal t s] releases the data iff the selected PCRs currently match
    their sealing-time values. *)
val unseal : t -> sealed -> string option

(** [sealed_to_wire] / [sealed_of_wire] let sealed blobs live on
    untrusted storage, as a TPM's blobs do. *)
val sealed_to_wire : sealed -> string

val sealed_of_wire : string -> sealed option

(** {2 Non-volatile storage}

    Small tamper-proof NV slots inside the chip. The canonical use here
    is storing a trusted wrapper's root digest so whole-device rollback
    is detected without the user remembering anything (VPFS + TPM,
    §III-D). Writes can be gated on a PCR policy fixed at definition. *)

(** [nv_define t ~index ~selection] creates an NV slot writable only
    while the selected PCRs match their current values. Raises on
    redefinition. *)
val nv_define : t -> index:int -> selection:int list -> unit

(** [nv_write t ~index data] — [Error] when the slot is undefined or the
    write policy no longer matches. *)
val nv_write : t -> index:int -> string -> (unit, string) result

val nv_read : t -> index:int -> (string, string) result

(** Capture PCR bank, NV storage and the seal nonce generator. *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t

val layer : ?name:string -> t -> Lt_world.Snapshottable.layer
