(** Machine-granularity chaos for the fleet.

    {!Lt_resil.Chaos} kills components; this harness kills {e machines}
    and cuts {e networks}, then audits the same property one level up:
    the blast radius of losing a whole host must stay inside what the
    static {!Lateral.Contain} analysis predicted for the components that
    were resident on it, and no component may ever be revived on a host
    that fails attestation policy.

    The built-in scenario is three independent clusters on [N] hosts
    (every host offers microkernel + sgx + sep):

    {ul
    {- [gate → worker] — a network-facing ingress on a commodity-class
       placement calling a TEE-pinned worker, vetted;}
    {- [vault] — a stateful SEP component pinned to the [sep] substrate;}
    {- [audit] — a free-floating microkernel logger.}}

    All three declare [on-failure] restart budgets, so the static
    prediction for losing their host is [Restarted] — which is exactly
    what a successful failover produces.

    Determinism: host-kill instants, partition handling, the request
    mix, candidate order, backoff jitter, tick counts — everything
    derives from [seed]. Equal seeds produce byte-identical reports;
    the [@fleet] CI alias diffs a double run. *)

open Lateral

(** One scheduled partition: cut controller↔[pt_host] when request
    [pt_from] begins, heal when request [pt_heal] begins ([0]: never).
    [pt_asym] cuts only host→controller — commands still arrive, replies
    are lost, so a placement can succeed invisibly and must be fenced
    after the heal. *)
type partition_spec = {
  pt_host : string;
  pt_from : int;
  pt_heal : int;
  pt_asym : bool;
}

type plan = {
  kill_hosts : string list;  (** each killed once, at a seeded instant *)
  partitions : partition_spec list;
}

val no_chaos : plan

type report = {
  fc_hosts : int;
  fc_rogue : string list;
  fc_requests : int;
  fc_seed : int;
  fc_ok : int;
  fc_failed_excused : int;
      (** failed while the target's cluster was on a killed, partitioned
          or failing-over host — the expected cost of the injected fault *)
  fc_failed_unexcused : int;  (** containment violations *)
  fc_violation_detail : (int * string) list;
  fc_kills : (int * string) list;  (** request instant, host *)
  fc_partition_events : (int * string * string) list;
      (** request instant, host, ["cut"] / ["cut-asym"] / ["heal"] *)
  fc_epochs : (string * int) list;
  fc_attests : (string * int) list;
  fc_attest_failures : int;
  fc_rogue_placements : int;  (** must be 0 *)
  fc_fenced : int;
  fc_placements : (string * string) list;  (** final cluster → host, sorted *)
  fc_failovers : (string * string) list;   (** chronological *)
  fc_recovery_ticks : int list;
      (** per completed failover — what BENCH_fleet gates its median on *)
  fc_unplaced : string list;
  fc_observed : (string * string) list;
      (** dynamic blast radius: worst observed impact per component *)
  fc_radius_escapes : (string * string * string) list;
      (** component, observed impact, statically allowed impact — any
          entry means observed ⊄ predicted *)
  fc_unroutable : int;  (** packets sent into a void mailbox *)
  fc_counters : (string * int) list;
  fc_span_ticks : int;
}

(** No unexcused failures, no rogue placements, observed ⊆ static. *)
val contained : report -> bool

(** The built-in scenario's components (manifests + behaviours), for
    tests and the CLI. *)
val scenario_components : unit -> (Manifest.t * Deploy.behaviour) list

(** {2 Reproducers}

    A minimized fleet schedule as a small text file
    ([test/corpus/*.repro]), replayed by [lateral fleet --replay]. *)

type repro = {
  rp_hosts : int;
  rp_rogue : string list;
  rp_requests : int;
  rp_seed : int;
  rp_plan : plan;
}

val render_repro : repro -> string

(** [parse_repro text] — inverse of {!render_repro}; tolerates comments
    and blank lines. *)
val parse_repro : string -> (repro, string) result

val load_repro : string -> (repro, string) result

(** [run ~hosts ~requests ~seed ()] boots [hosts] machines named
    [host-1 .. host-N] (those in [rogue] get a tampered agent), places
    the scenario, replays [requests] seeded requests under the plan and
    audits containment. Errors on an invalid plan (unknown host names,
    negative counts) — never on a mere containment violation, which is
    reported, not raised. *)
val run :
  ?config:Fleet.config -> ?plan:plan -> ?rogue:string list ->
  ?trace_capacity:int -> hosts:int -> requests:int -> seed:int -> unit ->
  (report * Lt_obs.Trace.t, string) result

val render_report_text : report -> string

val render_report_json : report -> string

(** {2 Shard kills}

    Hosts group round-robin into {e shards}: [host-n] belongs to shard
    [(n-1) mod shards], trust domain [shard-k] (the fleet-level
    counterpart of {!Lt_scale}'s nested tenant domains). Killing a
    shard kills every one of its machines; the audit then proves the
    observed blast radius stayed inside the dead shards' domain set. *)

(** [shard_of_host ~shards "host-n"] — the shard index, or an error on
    a non-fleet host name. *)
val shard_of_host : shards:int -> string -> (int, string) result

val shard_hosts : hosts:int -> shards:int -> int -> string list

(** [kill_shard_plan ~hosts ~shards ~kill] — a kill-only {!plan} that
    takes down every machine of every shard in [kill], each at its own
    seeded instant. *)
val kill_shard_plan :
  hosts:int -> shards:int -> kill:int list -> (plan, string) result

(** [shard_kill_audit ~shards ~kill report] — observed radius ⊆ the
    killed shards' domain set: every component whose observed impact is
    worse than untouched must belong to a cluster that was resident on
    a killed shard's machine (it failed over or ended unplaced), every
    killed machine must belong to a killed shard, and the static radius
    must hold. Only defined for reports of kill-only plans. *)
val shard_kill_audit :
  shards:int -> kill:int list -> report -> (unit, string list) result
