(** An attestation-gated multi-machine fleet.

    Everything below this module lives on {e one} machine: a
    {!Lateral.Deploy} launches components onto substrates that share a
    motherboard. This module scales the paper's containment story out to
    [N] simulated hosts. Each host owns its own hardware, substrates and
    deployments; the only thing joining hosts is the untrusted
    {!Lt_net.Net}. Every placement, migration, call and failover crosses
    machines exclusively through a {!Lt_net.Secure_channel} session that
    was attestation-gated by {!Lateral.Ra_channel}: the controller
    accepts a host only after fresh, channel-bound evidence that the
    host's agent enclave runs the expected code. Evidence is re-checked
    on {e every} reconnect and never cached across a partition — a host
    that was trustworthy before the cut proves it again after.

    Code never crosses the wire: component behaviours are pre-distributed
    images looked up by manifest name on the host ({e control} crosses
    machines, not code). What does cross is the manifest text of the
    cluster being placed, call requests/replies, and reconcile (fencing)
    commands — all as AEAD records inside the attested session, so the
    Dolev-Yao adversary can cut, delay or corrupt but never forge them.

    {2 Failure model}

    {ul
    {- {b machine kill} — the host dies with everything on it; the
       controller learns of it only through transport faults.}
    {- {b partition} — a directed cut between controller and host.
       Asymmetric cuts (host's replies lost, commands still delivered)
       are the nasty case: a placement can succeed on the host while the
       controller counts it failed and re-places elsewhere. The stale
       instance is {e fenced} — destroyed via {!Lateral.Deploy.destroy} —
       during the reconcile that follows the first re-attested reconnect
       after the heal.}
    {- {b rogue host} — the agent runs unexpected code. Attestation
       fails, the host gets zero placements, and its per-host circuit
       breaker soon stops even the connection attempts.}}

    Failover is the cross-host extension of {!Lt_resil.Supervisor}:
    when a cluster's host is unreachable, the cluster is re-placed on
    the surviving candidates in seeded order, with seeded exponential
    backoff between sweeps and a per-cluster budget derived from its
    members' manifest restart policies. All timing is the ambient
    {!Lt_obs.Trace} clock; equal seeds give byte-identical behaviour. *)

open Lateral

type config = {
  hop_ticks : int;  (** ticks one cross-machine packet hop burns *)
  failover_retries : int;
      (** extra candidate sweeps per failover after the first *)
  backoff_base : int;  (** first inter-sweep backoff, ticks; jitter bound *)
  backoff_cap : int;   (** backoff ceiling, ticks *)
  breaker_threshold : int;
      (** consecutive link faults that open a host's breaker *)
  breaker_cooldown : int;
      (** ticks an open host breaker waits before admitting a probe *)
}

(** [{hop_ticks = 1; failover_retries = 2; backoff_base = 4;
     backoff_cap = 64; breaker_threshold = 3; breaker_cooldown = 128}] *)
val default_config : config

(** What one simulated machine offers. [substrates] names the substrate
    classes to instantiate on it — drawn from ["microkernel"], ["sgx"]
    and ["sep"]; every host must offer ["sgx"] because the fleet agent
    is an enclave. A [rogue] host's agent runs tampered code: it can
    complete TLS (its cert is genuine) but never attestation. *)
type host_spec

val host_spec :
  ?rogue:bool -> name:string -> substrates:string list -> unit -> host_spec

type t

(** [create ?config ~seed ~hosts ~components ()] builds the machines,
    launches each host's agent enclave, derives the fleet CA pair (one
    for TLS certificates, one for attestation) and partitions
    [components] into {e clusters} — connected components of the
    (undirected) [connects_to] graph. Clusters are the unit of
    placement: a cluster always lands whole on one host, so no
    component-to-component call ever crosses machines and
    {!Lateral.App.validate} holds per host. Nothing is placed yet; call
    {!place_all}. Fails on duplicate or reserved host names, a host
    without ["sgx"], or an unsupported substrate class. *)
val create :
  ?config:config -> seed:int64 -> hosts:host_spec list ->
  components:(Manifest.t * Deploy.behaviour) list -> unit -> (t, string) result

(** {2 Topology} *)

(** Host names, in declaration order. *)
val hosts : t -> string list

val host_alive : t -> string -> bool

(** An attested session is currently established. *)
val host_connected : t -> string -> bool

(** Clusters as [(id, members)], sorted by id; a cluster's id is its
    lexicographically least member. *)
val clusters : t -> (string * string list) list

(** [cluster_partition manifests] — the same partition as a pure
    function of the manifests, for audits that only have a report (see
    {!Fleet_chaos.shard_kill_audit}). *)
val cluster_partition : Manifest.t list -> (string * Manifest.t list) list

(** [owner t cluster] — the host currently holding [cluster]. *)
val owner : t -> string -> string option

(** Clusters the fleet has given up on (failover budget spent or no
    eligible host would attest), sorted. *)
val unplaced : t -> string list

(** The shared untrusted network, for audits (e.g.
    {!Lt_net.Net.unroutable_count}). *)
val net : t -> Lt_net.Net.t

(** {2 Placement and calls} *)

(** [place_all t] places every cluster on the first eligible host in
    seeded order. Eligibility is static first — the host offers every
    member's substrate and satisfies every member's [place] selector
    ({!Lateral.Contain.host_can_host}) — then dynamic: the host must
    complete an attested handshake. A cluster with {e no} statically
    eligible host is an error (the condition lint rule
    L024-placement-unsatisfiable flags); a cluster whose eligible hosts
    all fail to attest is left {!unplaced}. *)
val place_all : t -> (unit, string) result

(** [call t ~target ~service req] routes one outside request to the
    component's cluster over the owning host's attested session. An
    application-level failure comes back as [Error] without touching the
    link; a {e transport} fault (no reply, record rejected) tears the
    session down, faults the host's breaker and triggers failover before
    returning the error. *)
val call : t -> target:string -> service:string -> string -> (string, string) result

(** {2 Chaos entry points} *)

(** [kill_host t name] — the machine dies: local deployments are gone,
    the host never answers again. The controller is not told. *)
val kill_host : t -> string -> (unit, string) result

(** [partition t ~host ~asym ()] cuts controller↔host. [asym] cuts only
    host→controller: commands arrive, replies are lost. *)
val partition : t -> host:string -> ?asym:bool -> unit -> unit

(** [heal t ~host] removes the cuts. The controller still re-attests
    before trusting the host again. *)
val heal : t -> host:string -> unit

(** [sweep t] — the periodic reconcile pass: re-attest every alive,
    unconnected host whose breaker admits it (fencing stale instances as
    a side effect) and re-place any cluster whose owner is gone. *)
val sweep : t -> unit

(** {2 Audit counters}

    All deterministic and sorted where keyed by name. *)

(** Established-session epochs per host (each completed attested
    handshake counts one). *)
val host_epochs : t -> (string * int) list

(** Successful attestations per host — equals epochs: there is no
    session without fresh evidence. *)
val host_attests : t -> (string * int) list

val attest_failures : t -> int

(** Successful placements onto rogue hosts. The gate makes this 0 by
    construction; the chaos harness asserts it anyway. *)
val rogue_placements : t -> int

(** Stale instances destroyed by reconcile after a partition. *)
val fenced : t -> int

(** Completed failovers, chronological [(cluster, new host)]. *)
val failovers : t -> (string * string) list

(** Ticks each completed failover burned, chronological — the
    recovery-time distribution the fleet bench gates on. *)
val recovery_ticks : t -> int list

(** Clusters that were re-placed at least once, sorted. *)
val failed_over_clusters : t -> string list
