open Lt_crypto
open Lateral
module Trace = Lt_obs.Trace
module Metrics = Lt_obs.Metrics

type partition_spec = {
  pt_host : string;
  pt_from : int;
  pt_heal : int;
  pt_asym : bool;
}

type plan = { kill_hosts : string list; partitions : partition_spec list }

let no_chaos = { kill_hosts = []; partitions = [] }

type report = {
  fc_hosts : int;
  fc_rogue : string list;
  fc_requests : int;
  fc_seed : int;
  fc_ok : int;
  fc_failed_excused : int;
  fc_failed_unexcused : int;
  fc_violation_detail : (int * string) list;
  fc_kills : (int * string) list;
  fc_partition_events : (int * string * string) list;
  fc_epochs : (string * int) list;
  fc_attests : (string * int) list;
  fc_attest_failures : int;
  fc_rogue_placements : int;
  fc_fenced : int;
  fc_placements : (string * string) list;
  fc_failovers : (string * string) list;
  fc_recovery_ticks : int list;
  fc_unplaced : string list;
  fc_observed : (string * string) list;
  fc_radius_escapes : (string * string * string) list;
  fc_unroutable : int;
  fc_counters : (string * int) list;
  fc_span_ticks : int;
}

let contained r =
  r.fc_failed_unexcused = 0 && r.fc_rogue_placements = 0
  && r.fc_radius_escapes = []

(* --- the built-in scenario ------------------------------------------------- *)

let restart_budget max = { Manifest.r_policy = Manifest.On_failure; r_max = max; r_window = 256 }

let scenario_components () =
  let gate =
    Manifest.v ~name:"gate" ~size_loc:3000 ~network_facing:true
      ~provides:[ "ingress" ]
      ~connects_to:[ Manifest.conn ~vetted:true "worker" "exec" ]
      ~restart:(restart_budget 3) ~placement:[ "class:commodity" ] ()
  in
  let worker =
    Manifest.v ~name:"worker" ~substrate:"sgx" ~size_loc:2000
      ~provides:[ "exec" ] ~restart:(restart_budget 3)
      ~placement:[ "class:tee" ] ()
  in
  let vault =
    Manifest.v ~name:"vault" ~substrate:"sep" ~size_loc:900 ~stateful:true
      ~network_facing:true ~provides:[ "seal" ] ~restart:(restart_budget 2)
      ~placement:[ "sep" ] ()
  in
  let audit =
    Manifest.v ~name:"audit" ~size_loc:600 ~network_facing:true
      ~provides:[ "log" ] ~restart:(restart_budget 3) ()
  in
  let gate_b ctx ~service:_ req =
    match ctx.Deploy.call_out ~target:"worker" ~service:"exec" req with
    | Ok r -> "gated:" ^ r
    | Error e -> Substrate.fail ("worker unavailable: " ^ e)
  in
  let worker_b _ctx ~service:_ req = "exec(" ^ req ^ ")" in
  let vault_b ctx ~service:_ req =
    ctx.Deploy.facilities.Substrate.f_store ~key:"latest" req;
    Printf.sprintf "sealed:%d" (String.length req)
  in
  let audit_b _ctx ~service:_ req = "logged:" ^ req in
  [ (gate, gate_b); (worker, worker_b); (vault, vault_b); (audit, audit_b) ]

(* --- plan validation -------------------------------------------------------- *)

let host_names n = List.init n (fun i -> Printf.sprintf "host-%d" (i + 1))

let validate_plan plan ~names ~rogue =
  let known h = List.mem h names in
  let bad p l = List.filter (fun x -> not (p x)) l in
  match bad known plan.kill_hosts with
  | h :: _ -> Error (Printf.sprintf "kill-host: unknown host %S" h)
  | [] ->
    (match bad (fun p -> known p.pt_host) plan.partitions with
     | p :: _ -> Error (Printf.sprintf "partition: unknown host %S" p.pt_host)
     | [] ->
       (match
          List.filter
            (fun p -> p.pt_from < 1 || (p.pt_heal <> 0 && p.pt_heal < p.pt_from))
            plan.partitions
        with
        | p :: _ ->
          Error
            (Printf.sprintf "partition of %s: heal %d before cut %d" p.pt_host
               p.pt_heal p.pt_from)
        | [] ->
          (match bad known rogue with
           | h :: _ -> Error (Printf.sprintf "rogue: unknown host %S" h)
           | [] -> Ok ())))

(* --- reproducers ------------------------------------------------------------ *)

type repro = {
  rp_hosts : int;
  rp_rogue : string list;
  rp_requests : int;
  rp_seed : int;
  rp_plan : plan;
}

let repro_magic = "fleet-repro v1"

let render_repro r =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%s\n" repro_magic;
  add "hosts %d\n" r.rp_hosts;
  add "requests %d\n" r.rp_requests;
  add "seed %d\n" r.rp_seed;
  List.iter (fun h -> add "rogue %s\n" h) r.rp_rogue;
  List.iter (fun h -> add "kill-host %s\n" h) r.rp_plan.kill_hosts;
  List.iter
    (fun p ->
      add "partition %s %d %d%s\n" p.pt_host p.pt_from p.pt_heal
        (if p.pt_asym then " asym" else ""))
    r.rp_plan.partitions;
  Buffer.contents buf

let parse_repro text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> Error "empty reproducer"
  | magic :: rest when magic = repro_magic ->
    let r =
      ref
        { rp_hosts = 3;
          rp_rogue = [];
          rp_requests = 40;
          rp_seed = 1;
          rp_plan = no_chaos }
    in
    let int_of what s =
      match int_of_string_opt s with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "bad %s %S" what s)
    in
    let step line =
      match String.split_on_char ' ' line with
      | [ "hosts"; n ] ->
        Result.map (fun n -> r := { !r with rp_hosts = n }) (int_of "hosts" n)
      | [ "requests"; n ] ->
        Result.map (fun n -> r := { !r with rp_requests = n }) (int_of "requests" n)
      | [ "seed"; n ] ->
        Result.map (fun n -> r := { !r with rp_seed = n }) (int_of "seed" n)
      | [ "rogue"; h ] ->
        Ok (r := { !r with rp_rogue = !r.rp_rogue @ [ h ] })
      | [ "kill-host"; h ] ->
        Ok
          (r :=
             { !r with
               rp_plan =
                 { !r.rp_plan with kill_hosts = !r.rp_plan.kill_hosts @ [ h ] } })
      | "partition" :: host :: from :: heal :: flags
        when flags = [] || flags = [ "asym" ] ->
        Result.bind (int_of "partition start" from) (fun pt_from ->
            Result.map
              (fun pt_heal ->
                let p = { pt_host = host; pt_from; pt_heal; pt_asym = flags <> [] } in
                r :=
                  { !r with
                    rp_plan =
                      { !r.rp_plan with
                        partitions = !r.rp_plan.partitions @ [ p ] } })
              (int_of "partition heal" heal))
      | _ -> Error (Printf.sprintf "unknown reproducer line %S" line)
    in
    let rec go = function
      | [] -> Ok !r
      | l :: rest -> (match step l with Ok () -> go rest | Error _ as e -> e)
    in
    go rest
  | magic :: _ ->
    Error (Printf.sprintf "not a fleet reproducer (expected %S, got %S)"
             repro_magic magic)

let load_repro path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    parse_repro text

(* --- the run ---------------------------------------------------------------- *)

let run ?(config = Fleet.default_config) ?(plan = no_chaos) ?(rogue = [])
    ?(trace_capacity = 65536) ~hosts ~requests ~seed () =
  if hosts < 1 then Error "a fleet needs at least one host"
  else if requests < 0 then Error "requests must be non-negative"
  else begin
    let names = host_names hosts in
    match validate_plan plan ~names ~rogue with
    | Error _ as e -> e
    | Ok () ->
      let specs =
        List.map
          (fun n ->
            Fleet.host_spec ~rogue:(List.mem n rogue) ~name:n
              ~substrates:[ "microkernel"; "sgx"; "sep" ] ())
          names
      in
      let components = scenario_components () in
      let manifests = List.map fst components in
      (* harness entropy is a separate stream from the fleet's, like the
         component chaos harness (seed vs seed + 1) *)
      let hrng = Drbg.create (Int64.of_int (seed + 1)) in
      let tracer = Trace.create ~capacity:trace_capacity () in
      let metrics = Metrics.create () in
      let result = ref (Error "fleet run did not start") in
      Metrics.with_metrics metrics (fun () ->
          Trace.with_tracer tracer (fun () ->
              match
                Fleet.create ~config ~seed:(Int64.of_int seed) ~hosts:specs
                  ~components ()
              with
              | Error e -> result := Error e
              | Ok fleet ->
                (match Fleet.place_all fleet with
                 | Error e -> result := Error e
                 | Ok () ->
                   let cluster_of =
                     let tbl = Hashtbl.create 8 in
                     List.iter
                       (fun (id, members) ->
                         List.iter (fun m -> Hashtbl.replace tbl m id) members)
                       (Fleet.clusters fleet);
                     tbl
                   in
                   let schedule =
                     List.map
                       (fun h -> (1 + Drbg.int hrng (max requests 1), h))
                       plan.kill_hosts
                   in
                   let ok = ref 0 and excused = ref 0 and unexcused = ref 0 in
                   let violation_detail = ref [] in
                   let kills = ref [] and part_events = ref [] in
                   let degraded = Hashtbl.create 8 in
                   (* components resident on a host at the instant it was
                      killed or cut: the roots the static radii are read
                      for *)
                   let roots = Hashtbl.create 8 in
                   let cut_hosts = Hashtbl.create 4 in
                   let collect_roots host =
                     List.iter
                       (fun (id, members) ->
                         if Fleet.owner fleet id = Some host then
                           List.iter (fun m -> Hashtbl.replace roots m ()) members)
                       (Fleet.clusters fleet)
                   in
                   for i = 1 to requests do
                     Trace.set_trace i;
                     List.iter
                       (fun (at, host) ->
                         if at = i then begin
                           collect_roots host;
                           ignore (Fleet.kill_host fleet host);
                           kills := (i, host) :: !kills
                         end)
                       schedule;
                     List.iter
                       (fun p ->
                         if p.pt_from = i then begin
                           collect_roots p.pt_host;
                           Fleet.partition fleet ~host:p.pt_host ~asym:p.pt_asym ();
                           Hashtbl.replace cut_hosts p.pt_host ();
                           part_events :=
                             (i, p.pt_host, if p.pt_asym then "cut-asym" else "cut")
                             :: !part_events
                         end;
                         if p.pt_heal = i then begin
                           Fleet.heal fleet ~host:p.pt_host;
                           Hashtbl.remove cut_hosts p.pt_host;
                           part_events := (i, p.pt_host, "heal") :: !part_events
                         end)
                       plan.partitions;
                     let target, service, payload =
                       match Drbg.int hrng 3 with
                       | 0 -> ("gate", "ingress", Printf.sprintf "req-%d" i)
                       | 1 -> ("vault", "seal", Printf.sprintf "secret-%d" i)
                       | _ -> ("audit", "log", Printf.sprintf "evt-%d" i)
                     in
                     let cluster = Hashtbl.find cluster_of target in
                     let owner_before = Fleet.owner fleet cluster in
                     let hurt_before =
                       match owner_before with
                       | None -> true
                       | Some h ->
                         (not (Fleet.host_alive fleet h))
                         || Hashtbl.mem cut_hosts h
                     in
                     let r =
                       Trace.with_span ~kind:"request"
                         ~name:(Trace.span_name target service)
                         ~attrs:[ ("request", string_of_int i) ]
                         (fun () ->
                           match
                             Fleet.call fleet ~target ~service payload
                           with
                           | Ok _ as r -> r
                           | Error e ->
                             Trace.fail_span e;
                             Error e)
                     in
                     match r with
                     | Ok _ ->
                       incr ok;
                       Metrics.incr "fleet_chaos/ok"
                     | Error e ->
                       let owner_after = Fleet.owner fleet cluster in
                       let excusable =
                         hurt_before || owner_after <> owner_before
                         || owner_after = None
                         || List.mem cluster (Fleet.unplaced fleet)
                       in
                       if excusable then begin
                         incr excused;
                         Metrics.incr "fleet_chaos/failed_excused";
                         List.iter
                           (fun (id, members) ->
                             if id = cluster then
                               List.iter
                                 (fun m -> Hashtbl.replace degraded m ())
                                 members)
                           (Fleet.clusters fleet)
                       end
                       else begin
                         incr unexcused;
                         Metrics.incr "fleet_chaos/failed_unexcused";
                         violation_detail :=
                           ( i,
                             Printf.sprintf
                               "%s.%s failed with its host healthy: %s" target
                               service e )
                           :: !violation_detail
                       end
                   done;
                   (* end-of-run reconcile: reconnect healed hosts (which
                      fences stale instances) and re-home orphans *)
                   Fleet.sweep fleet;
                   let failed_over = Fleet.failed_over_clusters fleet in
                   let observed =
                     List.filter_map
                       (fun m ->
                         let c = m.Manifest.name in
                         let cluster = Hashtbl.find cluster_of c in
                         if List.mem cluster (Fleet.unplaced fleet) then
                           Some (c, "failed")
                         else if List.mem cluster failed_over then
                           Some (c, "restarted")
                         else if Hashtbl.mem degraded c then Some (c, "degraded")
                         else None)
                       manifests
                     |> List.sort compare
                   in
                   let static = Contain.analyze manifests in
                   let allowed = Hashtbl.create 8 in
                   List.iter
                     (fun radius ->
                       if Hashtbl.mem roots radius.Contain.r_root then
                         List.iter
                           (fun (c, imp) ->
                             let rank = Contain.rank imp in
                             let prev =
                               match Hashtbl.find_opt allowed c with
                               | Some p -> p
                               | None -> 0
                             in
                             if rank > prev then Hashtbl.replace allowed c rank)
                           radius.Contain.r_hit)
                     static.Contain.radii;
                   let rank_name = function
                     | 0 -> "untouched"
                     | 1 -> "degraded"
                     | 2 -> "restarted"
                     | _ -> "failed"
                   in
                   let rank_of = function
                     | "degraded" -> 1
                     | "restarted" -> 2
                     | _ -> 3
                   in
                   let escapes =
                     List.filter_map
                       (fun (c, imp) ->
                         let a =
                           match Hashtbl.find_opt allowed c with
                           | Some r -> r
                           | None -> 0
                         in
                         if rank_of imp > a then Some (c, imp, rank_name a)
                         else None)
                       observed
                   in
                   let placements =
                     List.filter_map
                       (fun (id, _) ->
                         Option.map (fun h -> (id, h)) (Fleet.owner fleet id))
                       (Fleet.clusters fleet)
                     |> List.sort compare
                   in
                   result :=
                     Ok
                       { fc_hosts = hosts;
                         fc_rogue = List.sort compare rogue;
                         fc_requests = requests;
                         fc_seed = seed;
                         fc_ok = !ok;
                         fc_failed_excused = !excused;
                         fc_failed_unexcused = !unexcused;
                         fc_violation_detail = List.rev !violation_detail;
                         fc_kills = List.rev !kills;
                         fc_partition_events = List.rev !part_events;
                         fc_epochs = Fleet.host_epochs fleet;
                         fc_attests = Fleet.host_attests fleet;
                         fc_attest_failures = Fleet.attest_failures fleet;
                         fc_rogue_placements = Fleet.rogue_placements fleet;
                         fc_fenced = Fleet.fenced fleet;
                         fc_placements = placements;
                         fc_failovers = Fleet.failovers fleet;
                         fc_recovery_ticks = Fleet.recovery_ticks fleet;
                         fc_unplaced = Fleet.unplaced fleet;
                         fc_observed = observed;
                         fc_radius_escapes = escapes;
                         fc_unroutable =
                           Lt_net.Net.unroutable_count (Fleet.net fleet);
                         fc_counters = Metrics.counters metrics;
                         fc_span_ticks = Trace.now tracer })));
      match !result with Error _ as e -> e | Ok r -> Ok (r, tracer)
  end

(* --- rendering --------------------------------------------------------------- *)

let median xs =
  match List.sort compare xs with
  | [] -> 0
  | sorted -> List.nth sorted (List.length sorted / 2)

let render_report_text r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "lateral fleet: %d hosts, %d requests, seed %d%s\n" r.fc_hosts
    r.fc_requests r.fc_seed
    (if r.fc_rogue = [] then ""
     else " (rogue: " ^ String.concat ", " r.fc_rogue ^ ")");
  add "  ok %d, failed %d (excused %d, unexcused %d)\n" r.fc_ok
    (r.fc_failed_excused + r.fc_failed_unexcused)
    r.fc_failed_excused r.fc_failed_unexcused;
  add "  host kills: %s\n"
    (if r.fc_kills = [] then "-"
     else
       String.concat ", "
         (List.map (fun (i, h) -> Printf.sprintf "%s@%d" h i) r.fc_kills));
  add "  partitions: %s\n"
    (if r.fc_partition_events = [] then "-"
     else
       String.concat ", "
         (List.map
            (fun (i, h, what) -> Printf.sprintf "%s %s@%d" h what i)
            r.fc_partition_events));
  add "  epochs: %s; attest failures %d; rogue placements %d\n"
    (String.concat ", "
       (List.map (fun (h, n) -> Printf.sprintf "%s %d" h n) r.fc_epochs))
    r.fc_attest_failures r.fc_rogue_placements;
  add "  placements: %s\n"
    (if r.fc_placements = [] then "-"
     else
       String.concat ", "
         (List.map
            (fun (c, h) -> Printf.sprintf "%s->%s" c h)
            r.fc_placements));
  add "  failovers: %s; fenced %d; unplaced: %s\n"
    (if r.fc_failovers = [] then "-"
     else
       String.concat ", "
         (List.map (fun (c, h) -> Printf.sprintf "%s->%s" c h) r.fc_failovers))
    r.fc_fenced
    (if r.fc_unplaced = [] then "-" else String.concat ", " r.fc_unplaced);
  add "  recovery ticks: %s (median %d)\n"
    (if r.fc_recovery_ticks = [] then "-"
     else String.concat ", " (List.map string_of_int r.fc_recovery_ticks))
    (median r.fc_recovery_ticks);
  add "  observed radius: %s\n"
    (if r.fc_observed = [] then "-"
     else
       String.concat ", "
         (List.map (fun (c, im) -> Printf.sprintf "%s %s" c im) r.fc_observed));
  List.iter
    (fun (c, got, allowed) ->
      add "  RADIUS ESCAPE: %s observed %s, statically allowed %s\n" c got
        allowed)
    r.fc_radius_escapes;
  List.iter
    (fun (i, detail) ->
      add "  CONTAINMENT VIOLATION at request %d: %s\n" i detail)
    r.fc_violation_detail;
  add "  unroutable packets: %d; ticks: %d\n" r.fc_unroutable r.fc_span_ticks;
  Buffer.add_string buf "counters:\n";
  List.iter (fun (k, v) -> add "  %-40s %d\n" k v) r.fc_counters;
  add "verdict: %s\n" (if contained r then "contained" else "NOT CONTAINED");
  Buffer.contents buf

let render_report_json r =
  let esc = Metrics.json_escape in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "{\"hosts\":%d,\"rogue\":[%s],\"requests\":%d,\"seed\":%d,\"ok\":%d,\"failed_excused\":%d,\"failed_unexcused\":%d"
    r.fc_hosts
    (String.concat "," (List.map (fun h -> "\"" ^ esc h ^ "\"") r.fc_rogue))
    r.fc_requests r.fc_seed r.fc_ok r.fc_failed_excused r.fc_failed_unexcused;
  add ",\"kills\":[%s]"
    (String.concat ","
       (List.map
          (fun (i, h) -> Printf.sprintf "{\"at\":%d,\"host\":\"%s\"}" i (esc h))
          r.fc_kills));
  add ",\"partitions\":[%s]"
    (String.concat ","
       (List.map
          (fun (i, h, what) ->
            Printf.sprintf "{\"at\":%d,\"host\":\"%s\",\"event\":\"%s\"}" i
              (esc h) (esc what))
          r.fc_partition_events));
  add ",\"epochs\":{%s}"
    (String.concat ","
       (List.map (fun (h, n) -> Printf.sprintf "\"%s\":%d" (esc h) n) r.fc_epochs));
  add ",\"attests\":{%s},\"attest_failures\":%d,\"rogue_placements\":%d"
    (String.concat ","
       (List.map (fun (h, n) -> Printf.sprintf "\"%s\":%d" (esc h) n) r.fc_attests))
    r.fc_attest_failures r.fc_rogue_placements;
  add ",\"placements\":{%s},\"failovers\":[%s],\"fenced\":%d"
    (String.concat ","
       (List.map
          (fun (c, h) -> Printf.sprintf "\"%s\":\"%s\"" (esc c) (esc h))
          r.fc_placements))
    (String.concat ","
       (List.map
          (fun (c, h) ->
            Printf.sprintf "{\"cluster\":\"%s\",\"to\":\"%s\"}" (esc c) (esc h))
          r.fc_failovers))
    r.fc_fenced;
  add ",\"recovery_ticks\":[%s],\"recovery_median\":%d"
    (String.concat "," (List.map string_of_int r.fc_recovery_ticks))
    (median r.fc_recovery_ticks);
  add ",\"unplaced\":[%s],\"observed\":{%s},\"radius_escapes\":[%s]"
    (String.concat ","
       (List.map (fun c -> "\"" ^ esc c ^ "\"") r.fc_unplaced))
    (String.concat ","
       (List.map
          (fun (c, im) -> Printf.sprintf "\"%s\":\"%s\"" (esc c) (esc im))
          r.fc_observed))
    (String.concat ","
       (List.map
          (fun (c, got, allowed) ->
            Printf.sprintf
              "{\"component\":\"%s\",\"observed\":\"%s\",\"allowed\":\"%s\"}"
              (esc c) (esc got) (esc allowed))
          r.fc_radius_escapes));
  add ",\"violations\":[%s],\"unroutable\":%d,\"span_ticks\":%d,\"contained\":%b,\"counters\":{"
    (String.concat ","
       (List.map
          (fun (i, detail) ->
            Printf.sprintf "{\"at\":%d,\"detail\":\"%s\"}" i (esc detail))
          r.fc_violation_detail))
    r.fc_unroutable r.fc_span_ticks (contained r);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add "\"%s\":%d" (esc k) v)
    r.fc_counters;
  Buffer.add_string buf "}}\n";
  Buffer.contents buf

(* --- shard kills --------------------------------------------------------------- *)

let shard_of_host ~shards h =
  let prefix = "host-" in
  let plen = String.length prefix in
  if shards <= 0 then Error "shards must be positive"
  else if String.length h > plen && String.sub h 0 plen = prefix then
    match int_of_string_opt (String.sub h plen (String.length h - plen)) with
    | Some n when n >= 1 -> Ok ((n - 1) mod shards)
    | _ -> Error (Printf.sprintf "not a fleet host name: %S" h)
  else Error (Printf.sprintf "not a fleet host name: %S" h)

let shard_hosts ~hosts ~shards k =
  List.filter (fun h -> shard_of_host ~shards h = Ok k) (host_names hosts)

let kill_shard_plan ~hosts ~shards ~kill =
  if hosts <= 0 then Error "hosts must be positive"
  else if shards <= 0 || shards > hosts then
    Error "shards must be positive and at most hosts"
  else
    match List.find_opt (fun k -> k < 0 || k >= shards) kill with
    | Some k -> Error (Printf.sprintf "kill shard %d out of range" k)
    | None ->
      Ok
        { kill_hosts = List.concat_map (shard_hosts ~hosts ~shards) kill;
          partitions = [] }

let shard_kill_audit ~shards ~kill (r : report) =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  if r.fc_partition_events <> [] then
    err "audit requires a kill-only plan (report has partition events)";
  List.iter
    (fun (i, h) ->
      match shard_of_host ~shards h with
      | Error e -> err "%s" e
      | Ok k ->
        if not (List.mem k kill) then
          err "host %s killed at %d is not in a killed shard" h i)
    r.fc_kills;
  (* clusters that were resident on a dead host are exactly those that
     had to move (failovers) or ended the run homeless *)
  let touched =
    List.sort_uniq compare
      (List.map fst r.fc_failovers @ r.fc_unplaced)
  in
  let cluster_of =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (id, ms) ->
        List.iter (fun m -> Hashtbl.replace tbl m.Manifest.name id) ms)
      (Fleet.cluster_partition (List.map fst (scenario_components ())));
    tbl
  in
  let domain_set =
    String.concat ", " (List.map (Printf.sprintf "shard-%d") kill)
  in
  List.iter
    (fun (c, imp) ->
      match Hashtbl.find_opt cluster_of c with
      | None -> err "observed component %s is not in the scenario" c
      | Some cluster ->
        if not (List.mem cluster touched) then
          err
            "observed radius escapes the killed shards' domain set {%s}: \
             %s (%s) never lived on a killed host"
            domain_set c imp)
    r.fc_observed;
  List.iter
    (fun (c, imp, allowed) ->
      err "static radius escape: %s observed %s, allowed %s" c imp allowed)
    r.fc_radius_escapes;
  match List.rev !errs with [] -> Ok () | l -> Error l
