open Lt_crypto
open Lateral
module Net = Lt_net.Net
module Sc = Lt_net.Secure_channel
module Trace = Lt_obs.Trace
module Metrics = Lt_obs.Metrics
module Breaker = Lt_resil.Breaker

type config = {
  hop_ticks : int;
  failover_retries : int;
  backoff_base : int;
  backoff_cap : int;
  breaker_threshold : int;
  breaker_cooldown : int;
}

let default_config =
  { hop_ticks = 1;
    failover_retries = 2;
    backoff_base = 4;
    backoff_cap = 64;
    breaker_threshold = 3;
    breaker_cooldown = 128 }

type host_spec = { hs_name : string; hs_substrates : string list; hs_rogue : bool }

let host_spec ?(rogue = false) ~name ~substrates () =
  { hs_name = name; hs_substrates = substrates; hs_rogue = rogue }

(* the agent's measured identity; a rogue host runs something else under
   the same genuine TLS certificate *)
let agent_code = "fleet-agent"
let rogue_agent_code = "fleet-agent-rogue"
let controller_addr = "fleet"

type link = { l_cs : Sc.session; l_ss : Sc.session }

type host = {
  h_spec : Manifest.host;  (* what placement selectors match against *)
  h_rogue : bool;
  h_addr : Net.address;
  h_rng : Drbg.t;               (* the host's own entropy *)
  h_key : Rsa.keypair;
  h_cert : Cert.t;
  h_substrates : (string * Substrate.t) list;
  h_agent_sub : Substrate.t;
  h_agent : Substrate.component;
  h_breaker : Breaker.t;
  h_deploys : (string, Deploy.t) Hashtbl.t;  (* cluster id -> local deploy *)
  mutable h_alive : bool;
  mutable h_link : link option;  (* controller-side view of the session *)
  mutable h_epochs : int;
  mutable h_attests : int;
}

type t = {
  f_cfg : config;
  f_net : Net.t;
  f_rng : Drbg.t;  (* the controller's entropy: nonces, candidate order, jitter *)
  f_policy : Attestation.policy;
  f_tls_ca : Rsa.keypair;
  f_hosts : host list;  (* declaration order — iteration order is fixed *)
  f_behaviour : (string, Deploy.behaviour) Hashtbl.t;
  f_clusters : (string * Manifest.t list) list;  (* sorted by cluster id *)
  f_cluster_of : (string, string) Hashtbl.t;     (* member -> cluster id *)
  f_owner : (string, string) Hashtbl.t;          (* cluster id -> host name *)
  f_budget : (string, int) Hashtbl.t;            (* remaining failovers *)
  f_cuts : (Net.address * Net.address, unit) Hashtbl.t;
  mutable f_unplaced : string list;  (* given-up clusters, sorted *)
  mutable f_attest_failures : int;
  mutable f_rogue_placements : int;
  mutable f_fenced : int;
  mutable f_failovers : (string * string) list;  (* newest first *)
  mutable f_recovery : int list;                 (* newest first *)
}

(* --- construction --------------------------------------------------------- *)

(* clusters = connected components of the undirected connects_to graph;
   each is one placement unit, so a host's deployment is self-contained
   and validates *)
let cluster_partition manifests =
  let name_of m = m.Manifest.name in
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | Some p when p <> x ->
      let r = find p in
      Hashtbl.replace parent x r;
      r
    | _ -> x
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent (max ra rb) (min ra rb)
  in
  List.iter (fun m -> Hashtbl.replace parent (name_of m) (name_of m)) manifests;
  List.iter
    (fun m ->
      List.iter
        (fun c ->
          if Hashtbl.mem parent c.Manifest.target then
            union (name_of m) c.Manifest.target)
        m.Manifest.connects_to)
    manifests;
  let groups = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let root = find (name_of m) in
      let prev = try Hashtbl.find groups root with Not_found -> [] in
      Hashtbl.replace groups root (m :: prev))
    manifests;
  Hashtbl.fold (fun id ms acc -> (id, List.rev ms) :: acc) groups []
  |> List.sort compare

(* one failover budget per cluster: the cross-host analogue of the
   manifest restart budget. A cluster whose members all say [never] (or
   declare nothing) is pinned — it dies where it stands, exactly what
   the static analysis predicts ([Failed]). *)
let cluster_budget members =
  List.fold_left
    (fun acc m ->
      match m.Manifest.restart with
      | Some r when r.Manifest.r_policy <> Manifest.Never ->
        max acc r.Manifest.r_max
      | _ -> acc)
    0 members

let build_substrates rng ~ra_ca ~host_name names =
  let seen = Hashtbl.create 4 in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest ->
      if Hashtbl.mem seen s then
        Error (Printf.sprintf "host %s: duplicate substrate %s" host_name s)
      else begin
        Hashtbl.replace seen s ();
        match s with
        | "microkernel" ->
          let m = Lt_hw.Machine.create ~dram_pages:256 () in
          let mk, _ =
            Substrate_kernel.make m (Lt_kernel.Sched.Round_robin { quantum = 500 }) ()
          in
          go ((s, mk) :: acc) rest
        | "sgx" ->
          let m = Lt_hw.Machine.create ~dram_pages:128 () in
          let sgx, _ = Substrate_sgx.make m rng ~ca_name:"fleet-ra" ~ca_key:ra_ca () in
          go ((s, sgx) :: acc) rest
        | "sep" ->
          let m = Lt_hw.Machine.create ~dram_pages:64 () in
          let sep, _, _ =
            Substrate_sep.make m rng ~device_id:(host_name ^ "-sep") ~private_pages:4
          in
          go ((s, sep) :: acc) rest
        | other ->
          Error
            (Printf.sprintf
               "host %s: unsupported fleet substrate %S (microkernel | sgx | sep)"
               host_name other)
      end
  in
  go [] names

let create ?(config = default_config) ~seed ~hosts ~components () =
  let rng = Drbg.create seed in
  let net = Net.create () in
  (match Net.register net controller_addr with
   | Ok () | Error `Duplicate_addr -> () (* fresh net: cannot collide *));
  let tls_ca = Rsa.generate ~bits:512 rng in
  let ra_ca = Rsa.generate ~bits:512 rng in
  let cuts = Hashtbl.create 8 in
  Net.set_adversary net (fun pkt ->
      if Hashtbl.mem cuts (pkt.Net.src, pkt.Net.dst) then Net.Drop else Net.Deliver);
  let behaviour = Hashtbl.create 16 in
  List.iter
    (fun (m, b) -> Hashtbl.replace behaviour m.Manifest.name b)
    components;
  let clusters = cluster_partition (List.map fst components) in
  let cluster_of = Hashtbl.create 16 in
  List.iter
    (fun (id, ms) ->
      List.iter (fun m -> Hashtbl.replace cluster_of m.Manifest.name id) ms)
    clusters;
  let budget = Hashtbl.create 8 in
  List.iter (fun (id, ms) -> Hashtbl.replace budget id (cluster_budget ms)) clusters;
  let seen_host = Hashtbl.create 8 in
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | hs :: rest ->
      if hs.hs_name = controller_addr then
        Error (Printf.sprintf "host name %S is reserved" controller_addr)
      else if Hashtbl.mem seen_host hs.hs_name then
        Error (Printf.sprintf "duplicate host %S" hs.hs_name)
      else if not (List.mem "sgx" hs.hs_substrates) then
        Error
          (Printf.sprintf "host %s offers no sgx: the fleet agent is an enclave"
             hs.hs_name)
      else begin
        Hashtbl.replace seen_host hs.hs_name ();
        (* each host gets its own rng stream so one host's entropy use
           never perturbs another's *)
        let h_rng = Drbg.split rng in
        match build_substrates h_rng ~ra_ca ~host_name:hs.hs_name hs.hs_substrates with
        | Error _ as e -> e
        | Ok subs ->
          let agent_sub = List.assoc "sgx" subs in
          let code = if hs.hs_rogue then rogue_agent_code else agent_code in
          (match
             agent_sub.Substrate.launch ~name:(hs.hs_name ^ "-agent") ~code
               ~services:[ ("ping", fun _ x -> x) ]
           with
           | Error e ->
             Error (Printf.sprintf "host %s: agent launch: %s" hs.hs_name e)
           | Ok agent ->
             let key = Rsa.generate ~bits:512 h_rng in
             let cert =
               Cert.issue ~ca_name:"fleet-tls" ~ca_key:tls_ca ~subject:hs.hs_name
                 key.Rsa.pub
             in
             (match Net.register net hs.hs_name with
              | Ok () | Error `Duplicate_addr ->
                () (* seen_host already rejected duplicates *));
             let h =
               { h_spec =
                   Manifest.host ~name:hs.hs_name ~substrates:hs.hs_substrates;
                 h_rogue = hs.hs_rogue;
                 h_addr = hs.hs_name;
                 h_rng;
                 h_key = key;
                 h_cert = cert;
                 h_substrates = subs;
                 h_agent_sub = agent_sub;
                 h_agent = agent;
                 h_breaker =
                   Breaker.create ~prefix:"fleet"
                     ~threshold:config.breaker_threshold
                     ~cooldown:config.breaker_cooldown hs.hs_name;
                 h_deploys = Hashtbl.create 4;
                 h_alive = true;
                 h_link = None;
                 h_epochs = 0;
                 h_attests = 0 }
             in
             build (h :: acc) rest)
      end
  in
  match build [] hosts with
  | Error _ as e -> e
  | Ok [] -> Error "a fleet needs at least one host"
  | Ok built ->
    (* the policy every connect re-checks: evidence must chain to the
       fleet RA root and measure the genuine agent *)
    let measurement =
      (List.hd built).h_agent_sub.Substrate.measure ~code:agent_code
    in
    let policy =
      { Attestation.trusted_cas = [ ("fleet-ra", ra_ca.Rsa.pub) ];
        shared_device_keys = [];
        accepted_measurements = [ measurement ] }
    in
    Ok
      { f_cfg = config;
        f_net = net;
        f_rng = rng;
        f_policy = policy;
        f_tls_ca = tls_ca;
        f_hosts = built;
        f_behaviour = behaviour;
        f_clusters = clusters;
        f_cluster_of = cluster_of;
        f_owner = Hashtbl.create 8;
        f_budget = budget;
        f_cuts = cuts;
        f_unplaced = [];
        f_attest_failures = 0;
        f_rogue_placements = 0;
        f_fenced = 0;
        f_failovers = [];
        f_recovery = [] }

(* --- topology accessors --------------------------------------------------- *)

let hosts t = List.map (fun h -> h.h_spec.Manifest.h_name) t.f_hosts

let find_host t name =
  List.find_opt (fun h -> h.h_spec.Manifest.h_name = name) t.f_hosts

let host_alive t name =
  match find_host t name with Some h -> h.h_alive | None -> false

let host_connected t name =
  match find_host t name with Some h -> h.h_link <> None | None -> false

let clusters t = List.map (fun (id, ms) -> (id, List.map (fun m -> m.Manifest.name) ms)) t.f_clusters

let owner t cluster = Hashtbl.find_opt t.f_owner cluster

let unplaced t = t.f_unplaced

let net t = t.f_net

let host_epochs t =
  List.sort compare
    (List.map (fun h -> (h.h_spec.Manifest.h_name, h.h_epochs)) t.f_hosts)

let host_attests t =
  List.sort compare
    (List.map (fun h -> (h.h_spec.Manifest.h_name, h.h_attests)) t.f_hosts)

let attest_failures t = t.f_attest_failures
let rogue_placements t = t.f_rogue_placements
let fenced t = t.f_fenced
let failovers t = List.rev t.f_failovers
let recovery_ticks t = List.rev t.f_recovery

let failed_over_clusters t =
  List.sort_uniq compare (List.map fst t.f_failovers)

(* --- the wire ------------------------------------------------------------- *)

(* commands are plaintext inside the attested session: a one-line header
   and an optional body after the first newline *)
let frame header body = if body = "" then header else header ^ "\n" ^ body

let unframe msg =
  match String.index_opt msg '\n' with
  | None -> (msg, "")
  | Some i ->
    (String.sub msg 0 i, String.sub msg (i + 1) (String.length msg - i - 1))

let hop t = Trace.advance t.f_cfg.hop_ticks

(* stale packets — replies that arrived after the controller gave up,
   flights of a torn-down handshake — must never be fed into a fresh
   session's sequence space *)
let drain t addr =
  let n = ref 0 in
  let rec go () =
    match Net.recv t.f_net addr with
    | Some _ ->
      incr n;
      go ()
    | None -> ()
  in
  go ();
  if !n > 0 then Metrics.incr "fleet/stale_drained"

(* --- the host agent ------------------------------------------------------- *)

(* everything below runs "on the host": it may touch only the host's own
   state and the network *)

let host_deploy_of_member h target =
  let best = ref None in
  let keys =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) h.h_deploys [])
  in
  List.iter
    (fun id ->
      match Hashtbl.find_opt h.h_deploys id with
      | Some d when !best = None && Deploy.manifest d target <> None ->
        best := Some d
      | _ -> ())
    keys;
  !best

let host_place t h header body =
  match String.split_on_char ' ' header with
  | [ _; cluster ] ->
    (match Manifest_file.parse body with
     | Error e -> "err\n" ^ e
     | Ok ms ->
       let missing =
         List.filter (fun m -> not (Hashtbl.mem t.f_behaviour m.Manifest.name)) ms
       in
       if missing <> [] then
         "err\nno code image for " ^ (List.hd missing).Manifest.name
       else begin
         (* a re-place onto a host that still has a stale copy first
            scrubs the old instance *)
         (match Hashtbl.find_opt h.h_deploys cluster with
          | Some old ->
            Deploy.destroy old;
            Hashtbl.remove h.h_deploys cluster
          | None -> ());
         let specs =
           List.map (fun m -> (m, Hashtbl.find t.f_behaviour m.Manifest.name)) ms
         in
         match Deploy.deploy ~substrates:h.h_substrates specs with
         | Error e -> "err\n" ^ e
         | Ok d ->
           Hashtbl.replace h.h_deploys cluster d;
           Trace.event ~kind:"fleet" ~name:"place"
             ~attrs:[ ("host", h.h_spec.Manifest.h_name); ("cluster", cluster) ]
             ();
           "ok\nplaced"
       end)
  | _ -> "err\nmalformed place"

let host_call h header body =
  match String.split_on_char ' ' header with
  | [ _; target; service ] ->
    (match host_deploy_of_member h target with
     | None -> "err\nno such component here: " ^ target
     | Some d ->
       (match Deploy.call_typed d ~caller:None ~target ~service body with
        | Ok resp -> "ok\n" ^ resp
        | Error e -> "err\n" ^ App.render_call_error e))
  | _ -> "err\nmalformed call"

let host_reconcile h header =
  let owned =
    match String.split_on_char ' ' header with _ :: rest -> rest | [] -> []
  in
  let local =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) h.h_deploys [])
  in
  let fenced = ref 0 in
  List.iter
    (fun id ->
      if not (List.mem id owned) then begin
        (match Hashtbl.find_opt h.h_deploys id with
         | Some d -> Deploy.destroy d
         | None -> ());
        Hashtbl.remove h.h_deploys id;
        incr fenced;
        Trace.event ~kind:"fleet" ~name:"fence"
          ~attrs:[ ("host", h.h_spec.Manifest.h_name); ("cluster", id) ]
          ()
      end)
    local;
  Printf.sprintf "ok\n%d" !fenced

let host_handle t h plain =
  let header, body = unframe plain in
  match String.split_on_char ' ' header with
  | "place" :: _ -> host_place t h header body
  | "call" :: _ -> host_call h header body
  | "reconcile" :: _ -> host_reconcile h header
  | "ping" :: _ -> "ok\npong"
  | _ -> "err\nunknown command"

(* the host agent's receive loop: open each pending record on the
   session, act, reply. A record that fails to open (tampered, or the
   sequence space desynced by a drop) kills the host's side of the
   session — it falls silent and the controller must re-handshake. *)
let host_pump t h =
  match h.h_link with
  | None -> ()
  | Some link ->
    let rec go () =
      match Net.recv t.f_net h.h_addr with
      | None -> ()
      | Some pkt ->
        (match Sc.receive link.l_ss pkt.Net.payload with
         | Error _ ->
           Metrics.incr "fleet/host_record_rejected";
           h.h_link <- None
         | Ok plain ->
           let reply = host_handle t h plain in
           Net.send t.f_net ~src:h.h_addr ~dst:controller_addr
             (Sc.send link.l_ss reply);
           go ())
    in
    go ()

(* --- connecting (handshake + fresh attestation) --------------------------- *)

(* pump a TLS handshake across the real network, host side gated on
   liveness — unlike [Sc.connect], a dead or partitioned host simply
   never answers and the handshake stalls out *)
let pump_handshake t h client server =
  let max_flights = 16 in
  Net.send t.f_net ~src:controller_addr ~dst:h.h_addr (Sc.Client.start client);
  hop t;
  let rec round flights =
    if flights > max_flights then Error "handshake stalled"
    else begin
      let progressed = ref false in
      (* host side *)
      if h.h_alive then begin
        let rec host_side () =
          match Net.recv t.f_net h.h_addr with
          | None -> ()
          | Some pkt ->
            progressed := true;
            (match Sc.Server.handle server pkt.Net.payload with
             | Ok (Some reply) ->
               Net.send t.f_net ~src:h.h_addr ~dst:controller_addr reply;
               hop t;
               host_side ()
             | Ok None -> host_side ()
             | Error _ -> ())
        in
        host_side ()
      end;
      (* controller side *)
      let err = ref None in
      let rec ctl_side () =
        match Net.recv t.f_net controller_addr with
        | None -> ()
        | Some pkt ->
          progressed := true;
          (match Sc.Client.handle client pkt.Net.payload with
           | Ok (Some reply) ->
             Net.send t.f_net ~src:controller_addr ~dst:h.h_addr reply;
             hop t;
             ctl_side ()
           | Ok None -> ctl_side ()
           | Error e -> err := Some e)
      in
      ctl_side ();
      match !err with
      | Some e -> Error e
      | None ->
        (match (Sc.Client.session client, Sc.Server.session server) with
         | Some cs, Some ss -> Ok (cs, ss)
         | _ ->
           if !progressed then round (flights + 1)
           else Error "handshake stalled (no progress)")
    end
  in
  round 0

(* one request/reply exchange over an established link. [None] reply is
   a transport fault; the caller decides what that means. *)
let exchange t h plain =
  match h.h_link with
  | None -> Error "no session"
  | Some link ->
    drain t controller_addr;
    Net.send t.f_net ~src:controller_addr ~dst:h.h_addr (Sc.send link.l_cs plain);
    hop t;
    if h.h_alive then host_pump t h;
    hop t;
    (match Net.recv t.f_net controller_addr with
     | None -> Error "no reply"
     | Some pkt ->
       (match Sc.receive link.l_cs pkt.Net.payload with
        | Ok reply -> Ok reply
        | Error e ->
          Metrics.incr "fleet/record_rejected";
          Error ("record rejected: " ^ e)))

let reconcile t h =
  let name = h.h_spec.Manifest.h_name in
  let owned =
    List.sort compare
      (Hashtbl.fold
         (fun cluster hname acc -> if hname = name then cluster :: acc else acc)
         t.f_owner [])
  in
  match exchange t h (frame (String.concat " " ("reconcile" :: owned)) "") with
  | Ok reply ->
    let header, body = unframe reply in
    if header = "ok" then begin
      let n = try int_of_string body with _ -> 0 in
      if n > 0 then begin
        t.f_fenced <- t.f_fenced + n;
        Metrics.incr "fleet/fenced"
      end;
      Ok ()
    end
    else Error body
  | Error e ->
    h.h_link <- None;
    Error e

(* establish (or re-establish) the attested session to [h]. Evidence is
   demanded fresh every time — nothing learned before a partition
   survives it. *)
let connect t h =
  let name = h.h_spec.Manifest.h_name in
  if h.h_link <> None then Ok ()
  else if not (Breaker.admit h.h_breaker) then Error "host circuit open"
  else begin
    let fail e =
      Breaker.fault h.h_breaker;
      Metrics.incr "fleet/connect_fail";
      Error e
    in
    drain t controller_addr;
    drain t h.h_addr;
    let client =
      Sc.Client.create t.f_rng ~trusted_ca:t.f_tls_ca.Rsa.pub
        ~expected_subject:name ()
    in
    let server = Sc.Server.create h.h_rng ~key:h.h_key ~cert:h.h_cert in
    match pump_handshake t h client server with
    | Error e -> fail (Printf.sprintf "handshake with %s: %s" name e)
    | Ok (cs, ss) ->
      (* RA inside the channel: challenge and evidence cross the same
         untrusted network as everything else *)
      let challenge, nonce = Ra_channel.request t.f_rng cs in
      Net.send t.f_net ~src:controller_addr ~dst:h.h_addr challenge;
      hop t;
      let evidence =
        if not h.h_alive then None
        else
          match Net.recv t.f_net h.h_addr with
          | None -> None
          | Some pkt ->
            (match Ra_channel.respond ss h.h_agent_sub h.h_agent
                     ~challenge:pkt.Net.payload with
             | Ok response ->
               Net.send t.f_net ~src:h.h_addr ~dst:controller_addr response;
               hop t;
               Net.recv t.f_net controller_addr
               |> Option.map (fun p -> p.Net.payload)
             | Error _ -> None)
      in
      (match evidence with
       | None -> fail (Printf.sprintf "attestation of %s: no evidence" name)
       | Some response ->
         (match Ra_channel.check cs ~policy:t.f_policy ~nonce ~response with
          | Error e ->
            t.f_attest_failures <- t.f_attest_failures + 1;
            Metrics.incr "fleet/attest_fail";
            Trace.event ~kind:"fleet" ~name:"attest-fail"
              ~attrs:(Trace.attr "host" name) ();
            fail (Printf.sprintf "attestation of %s: %s" name e)
          | Ok () ->
            h.h_link <- Some { l_cs = cs; l_ss = ss };
            h.h_epochs <- h.h_epochs + 1;
            h.h_attests <- h.h_attests + 1;
            Breaker.success h.h_breaker;
            Metrics.incr "fleet/attest_ok";
            Trace.event ~kind:"fleet" ~name:"attest-ok"
              ~attrs:(Trace.attr "host" name) ();
            (* fence first: a reconnect after a partition must destroy
               whatever this host holds that the fleet re-homed *)
            (match reconcile t h with
             | Ok () -> Ok ()
             | Error e ->
               fail (Printf.sprintf "reconcile with %s: %s" name e))))
  end

(* --- placement and failover ----------------------------------------------- *)

let eligible_hosts t members =
  List.filter
    (fun h ->
      List.for_all (fun m -> Contain.host_can_host h.h_spec m) members)
    t.f_hosts

(* seeded candidate order: a deterministic rotation of the declaration
   order, so equal seeds sweep hosts identically but placement still
   spreads instead of piling onto the first host *)
let seeded_order t hs =
  match hs with
  | [] | [ _ ] -> hs
  | _ ->
    let n = List.length hs in
    let k = Drbg.int t.f_rng n in
    let rec split i acc rest =
      if i = k then (List.rev acc, rest)
      else
        match rest with
        | [] -> (List.rev acc, [])
        | x :: tl -> split (i + 1) (x :: acc) tl
    in
    let pre, post = split 0 [] hs in
    post @ pre

let members_of t cluster =
  match List.assoc_opt cluster t.f_clusters with Some ms -> ms | None -> []

let place_on t h cluster =
  let members = members_of t cluster in
  match connect t h with
  | Error _ as e -> e
  | Ok () ->
    (match
       exchange t h (frame ("place " ^ cluster) (Manifest_file.to_text members))
     with
     | Ok reply ->
       let header, body = unframe reply in
       if header = "ok" then begin
         Hashtbl.replace t.f_owner cluster h.h_spec.Manifest.h_name;
         if h.h_rogue then begin
           (* the gate should make this impossible; count it anyway so
              the audit can prove it stayed impossible *)
           t.f_rogue_placements <- t.f_rogue_placements + 1;
           Metrics.incr "fleet/rogue_placement"
         end;
         Metrics.incr "fleet/place";
         Ok ()
       end
       else Error body
     | Error e ->
       (* transport fault mid-placement: the host may or may not hold an
          instance now (the asymmetric-partition case). Tear down; the
          reconcile after the next successful handshake fences it. *)
       h.h_link <- None;
       Breaker.fault h.h_breaker;
       Error e)

let give_up t cluster =
  if not (List.mem cluster t.f_unplaced) then begin
    t.f_unplaced <- List.sort compare (cluster :: t.f_unplaced);
    Metrics.incr "fleet/cluster_given_up";
    Trace.event ~kind:"fleet" ~name:"give-up" ~attrs:(Trace.attr "cluster" cluster)
      ()
  end

(* re-place [cluster] on a surviving host: seeded candidate order,
   seeded exponential backoff between sweeps, per-cluster budget *)
let fail_over t cluster =
  let members = members_of t cluster in
  let was = Hashtbl.find_opt t.f_owner cluster in
  Hashtbl.remove t.f_owner cluster;
  let budget = match Hashtbl.find_opt t.f_budget cluster with Some b -> b | None -> 0 in
  if budget <= 0 then begin
    give_up t cluster;
    Error (Printf.sprintf "cluster %s: failover budget spent" cluster)
  end
  else begin
    let started = Trace.ambient_now () in
    let statics = eligible_hosts t members in
    let rec sweep attempt =
      if attempt > t.f_cfg.failover_retries then begin
        give_up t cluster;
        Error (Printf.sprintf "cluster %s: no host would take it" cluster)
      end
      else begin
        if attempt > 0 then begin
          let base = t.f_cfg.backoff_base in
          let expo = min t.f_cfg.backoff_cap (base * (1 lsl (attempt - 1))) in
          Trace.advance (expo + Drbg.int t.f_rng base);
          Metrics.incr "fleet/failover_backoff"
        end;
        let candidates = seeded_order t statics in
        let rec try_hosts = function
          | [] -> None
          | h :: rest ->
            if Some h.h_spec.Manifest.h_name = was && rest <> [] then
              (* prefer anywhere else; the old owner goes last *)
              (match try_hosts rest with None -> try_hosts [ h ] | r -> r)
            else (
              match place_on t h cluster with
              | Ok () -> Some h
              | Error _ -> try_hosts rest)
        in
        match try_hosts candidates with
        | Some h ->
          Hashtbl.replace t.f_budget cluster (budget - 1);
          let name = h.h_spec.Manifest.h_name in
          t.f_failovers <- (cluster, name) :: t.f_failovers;
          t.f_recovery <- (Trace.ambient_now () - started) :: t.f_recovery;
          Metrics.incr "fleet/failover";
          Trace.event ~kind:"fleet" ~name:"failover"
            ~attrs:[ ("cluster", cluster); ("to", name) ]
            ();
          Ok ()
        | None -> sweep (attempt + 1)
      end
    in
    if statics = [] then begin
      give_up t cluster;
      Error (Printf.sprintf "cluster %s: no eligible host" cluster)
    end
    else sweep 0
  end

let place_all t =
  let rec go = function
    | [] -> Ok ()
    | (cluster, members) :: rest ->
      if Hashtbl.mem t.f_owner cluster then go rest
      else begin
        let statics = eligible_hosts t members in
        if statics = [] then
          Error
            (Printf.sprintf
               "cluster %s: no declared host satisfies its placement" cluster)
        else begin
          let candidates = seeded_order t statics in
          let rec try_hosts = function
            | [] ->
              (* statically fine, dynamically rejected everywhere (all
                 candidates rogue or unreachable): leave it unplaced *)
              give_up t cluster;
              Ok ()
            | h :: rest' ->
              (match place_on t h cluster with
               | Ok () -> Ok ()
               | Error _ -> try_hosts rest')
          in
          match try_hosts candidates with Ok () -> go rest | Error _ as e -> e
        end
      end
  in
  go t.f_clusters

(* --- calls ---------------------------------------------------------------- *)

let call t ~target ~service req =
  match Hashtbl.find_opt t.f_cluster_of target with
  | None -> Error (Printf.sprintf "unknown component %S" target)
  | Some cluster ->
    (match Hashtbl.find_opt t.f_owner cluster with
     | None -> Error (Printf.sprintf "cluster %s is not placed" cluster)
     | Some hname ->
       let h = Option.get (find_host t hname) in
       let after_transport_fault e =
         h.h_link <- None;
         Breaker.fault h.h_breaker;
         Metrics.incr "fleet/transport_fault";
         ignore (fail_over t cluster);
         Error (Printf.sprintf "host %s unreachable (%s); failing over" hname e)
       in
       (match connect t h with
        | Error e ->
          ignore (fail_over t cluster);
          Error (Printf.sprintf "host %s unreachable (%s); failing over" hname e)
        | Ok () ->
          (match exchange t h (frame (Printf.sprintf "call %s %s" target service) req) with
           | Error e -> after_transport_fault e
           | Ok reply ->
             let header, body = unframe reply in
             if header = "ok" then begin
               Metrics.incr "fleet/call_ok";
               Ok body
             end
             else begin
               (* an application error from a healthy, attested host is
                  an answer, not a fault: no teardown, no failover *)
               Metrics.incr "fleet/call_err";
               Error body
             end)))

(* --- chaos entry points ---------------------------------------------------- *)

let kill_host t name =
  match find_host t name with
  | None -> Error (Printf.sprintf "no host %S" name)
  | Some h ->
    if h.h_alive then begin
      h.h_alive <- false;
      (* power off: everything resident is gone *)
      let ids = Hashtbl.fold (fun k _ acc -> k :: acc) h.h_deploys [] in
      List.iter
        (fun id ->
          (match Hashtbl.find_opt h.h_deploys id with
           | Some d -> Deploy.destroy d
           | None -> ());
          Hashtbl.remove h.h_deploys id)
        (List.sort compare ids);
      Metrics.incr "fleet/host_killed";
      Trace.event ~kind:"fleet" ~name:"kill-host" ~attrs:(Trace.attr "host" name)
        ()
    end;
    Ok ()

let partition t ~host ?(asym = false) () =
  Hashtbl.replace t.f_cuts (host, controller_addr) ();
  if not asym then Hashtbl.replace t.f_cuts (controller_addr, host) ();
  Metrics.incr "fleet/partition";
  Trace.event ~kind:"fleet" ~name:"partition"
    ~attrs:[ ("host", host); ("mode", if asym then "asym" else "full") ]
    ()

let heal t ~host =
  Hashtbl.remove t.f_cuts (host, controller_addr);
  Hashtbl.remove t.f_cuts (controller_addr, host);
  Metrics.incr "fleet/heal";
  Trace.event ~kind:"fleet" ~name:"heal" ~attrs:(Trace.attr "host" host) ()

let sweep t =
  (* reconnect (and thereby fence) every host that will attest *)
  List.iter
    (fun h ->
      if h.h_alive && h.h_link = None && Breaker.state h.h_breaker <> Breaker.Open
      then ignore (connect t h))
    t.f_hosts;
  (* re-home clusters whose owner stopped answering *)
  List.iter
    (fun (cluster, _) ->
      match Hashtbl.find_opt t.f_owner cluster with
      | None -> ()
      | Some hname ->
        let h = Option.get (find_host t hname) in
        if h.h_link = None then (
          match connect t h with
          | Ok () -> ()
          | Error _ -> ignore (fail_over t cluster)))
    t.f_clusters
