(** CHERI-style capability machine (§III-D).

    "The research community even discusses architectures with hardware
    capabilities to enable even more fine-grained disaggregation of
    authority. The CHERI capability system is implemented as a modified
    MIPS CPU, using guarded pointers as capabilities."

    The model: a single flat memory, but every access goes through a
    guarded pointer carrying bounds and permissions, checked by
    "hardware". Capabilities are unforgeable (abstract type) and
    monotone: derivation can only shrink bounds and drop permissions.
    Sealing binds a capability to an object type so it can cross
    compartments opaquely and be exercised only by an [invoke] through
    the matching entry capability — the CCall pattern. *)

type t
(** One capability machine (memory + sealing state). *)

type cap
(** A guarded pointer. Values of this type are the only way to touch
    memory; OCaml's abstraction plays the role of tag-protected
    registers. *)

type perms = { load : bool; store : bool }

exception Capability_fault of string

val create : size:int -> t

(** [root t] is the initial all-powerful capability, held by the
    "firmware" that sets up compartments. *)
val root : t -> cap

(** [derive cap ~off ~len ~perms] — a smaller view. Monotonicity is
    enforced: offsets beyond the parent's bounds or added permissions
    raise {!Capability_fault}. [off] is relative to [cap]'s base. *)
val derive : cap -> off:int -> len:int -> perms:perms -> cap

val base : cap -> int

val length : cap -> int

val permissions : cap -> perms

(** [load t cap ~off ~len] / [store t cap ~off data] — bounds- and
    permission-checked memory access. *)
val load : t -> cap -> off:int -> len:int -> string

val store : t -> cap -> off:int -> string -> unit

(** {2 Sealing (compartment crossing)} *)

type otype = int

(** [seal t cap ~otype] makes the capability opaque: it cannot be used
    for load/store or derivation until unsealed by an [invoke] with the
    same type. *)
val seal : t -> cap -> otype:otype -> cap

val is_sealed : cap -> bool

(** [invoke t ~code ~data f] — CCall: [code] and [data] must be sealed
    with the same otype; [f] runs as the compartment with the unsealed
    data capability. Raises {!Capability_fault} on a type mismatch. *)
val invoke : t -> code:cap -> data:cap -> (cap -> 'a) -> 'a

(** {2 Attack surface for experiments} *)

(** [flat_read t ~addr ~len] — what a conventional (non-CHERI) machine
    would allow: an unchecked read of physical memory. Used as the
    baseline in the buffer-overflow experiment. *)
val flat_read : t -> addr:int -> len:int -> string

(** Capture compartment memory (copy-on-write; capabilities are
    immutable values). *)
val take_snapshot : t -> unit -> unit

val state_digest : t -> Lt_world.Digest64.t
