type perms = { load : bool; store : bool }

type cap = {
  c_base : int;
  c_len : int;
  c_perms : perms;
  c_seal : int option; (* otype when sealed *)
}

module Cow = Lt_world.Cow

type t = { mem : Cow.t }

exception Capability_fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Capability_fault s)) fmt

let create ~size =
  if size <= 0 then invalid_arg "Cheri.create";
  { mem = Cow.create ~len:size }

let root t =
  { c_base = 0;
    c_len = Cow.length t.mem;
    c_perms = { load = true; store = true };
    c_seal = None }

let check_unsealed cap op =
  match cap.c_seal with
  | Some _ -> fault "%s through a sealed capability" op
  | None -> ()

let derive cap ~off ~len ~perms =
  check_unsealed cap "derive";
  if off < 0 || len < 0 || off + len > cap.c_len then
    fault "derive out of bounds: off=%d len=%d parent-len=%d" off len cap.c_len;
  if (perms.load && not cap.c_perms.load) || (perms.store && not cap.c_perms.store)
  then fault "derive cannot add permissions";
  { c_base = cap.c_base + off; c_len = len; c_perms = perms; c_seal = None }

let base cap = cap.c_base

let length cap = cap.c_len

let permissions cap = cap.c_perms

let load t cap ~off ~len =
  check_unsealed cap "load";
  if not cap.c_perms.load then fault "load permission missing";
  if off < 0 || len < 0 || off + len > cap.c_len then
    fault "load out of bounds: off=%d len=%d cap-len=%d" off len cap.c_len;
  Cow.sub_string t.mem ~pos:(cap.c_base + off) ~len

let store t cap ~off data =
  check_unsealed cap "store";
  if not cap.c_perms.store then fault "store permission missing";
  let len = String.length data in
  if off < 0 || off + len > cap.c_len then
    fault "store out of bounds: off=%d len=%d cap-len=%d" off len cap.c_len;
  Cow.blit_string data t.mem ~pos:(cap.c_base + off)

type otype = int

let seal _t cap ~otype =
  check_unsealed cap "seal";
  if otype < 0 then fault "invalid otype";
  { cap with c_seal = Some otype }

let is_sealed cap = cap.c_seal <> None

let invoke _t ~code ~data f =
  match (code.c_seal, data.c_seal) with
  | Some a, Some b when a = b -> f { data with c_seal = None }
  | Some _, Some _ -> fault "invoke: otype mismatch"
  | _ -> fault "invoke: both capabilities must be sealed"

let flat_read t ~addr ~len =
  if addr < 0 || len < 0 || addr + len > Cow.length t.mem then
    invalid_arg "Cheri.flat_read";
  Cow.sub_string t.mem ~pos:addr ~len

(* --- Snapshottable ---------------------------------------------------- *)

(* capabilities are immutable values; compartment memory is the only
   state, and it is copy-on-write *)
let take_snapshot t =
  let mem = Cow.snapshot t.mem in
  fun () -> Cow.restore t.mem mem

let state_digest t = Cow.digest t.mem
